// bench_diff: compare two multi-run telemetry JSONL exports and fail loudly
// on perf regressions (DESIGN.md §10.5).
//
//   bench_diff <baseline.json> <candidate.json> [options]
//     --threshold-pct P   relative regression allowed on scored metrics
//                         (default 30 -- bench boxes are noisy; CI passes a
//                         looser value still tight enough to catch 2x drifts)
//     --prefix S          only score metrics whose name starts with S
//                         (repeatable; unscored metrics are still listed)
//     --quiet             print only regressions and the verdict line
//
// Alignment: runs pair by their meta "run" name, then counters/gauges/
// histograms pair by metric name within the run. A metric present on only
// one side is reported but never fails the diff (bench profiles legitimately
// gain and lose series across PRs).
//
// Scoring uses name-based direction heuristics:
//   higher-is-better:  *rps*, *per_sec*, *throughput*, *ops*
//   lower-is-better:   *ms*, *latency*, *dur*, histogram means (sum/count)
//   everything else:   informational only (counters count work performed;
//                      a change is a behavior diff, not a perf verdict)
//
// Exit codes: 0 ok, 1 regression(s), 2 usage/io/parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/export.hpp"

namespace {

using dlr::telemetry::HistogramRow;
using dlr::telemetry::Imported;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool contains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

enum class Direction { HigherBetter, LowerBetter, Info };

Direction direction_of(const std::string& name) {
  if (contains(name, "rps") || contains(name, "per_sec") ||
      contains(name, "throughput") || contains(name, "ops"))
    return Direction::HigherBetter;
  if (contains(name, "ms") || contains(name, "latency") || contains(name, "dur"))
    return Direction::LowerBetter;
  return Direction::Info;
}

struct Row {
  std::string run;
  std::string name;
  double base = 0;
  double cand = 0;
  Direction dir = Direction::Info;
  bool regression = false;
};

/// Relative change in the harmful direction, as a fraction (0 = no worse).
double harm(const Row& r) {
  if (r.base == 0) return 0;
  const double rel = (r.cand - r.base) / r.base;
  if (r.dir == Direction::HigherBetter) return -rel;
  if (r.dir == Direction::LowerBetter) return rel;
  return 0;
}

struct Options {
  double threshold_pct = 30;
  std::vector<std::string> prefixes;
  bool quiet = false;
};

bool prefix_ok(const Options& opt, const std::string& name) {
  if (opt.prefixes.empty()) return true;
  for (const auto& p : opt.prefixes)
    if (name.rfind(p, 0) == 0) return true;
  return false;
}

void score(const Options& opt, std::vector<Row>& rows, const std::string& run,
           const std::string& name, double base, double cand, Direction dir) {
  Row r{run, name, base, cand, dir, false};
  if (dir != Direction::Info && prefix_ok(opt, name))
    r.regression = harm(r) * 100.0 > opt.threshold_pct;
  rows.push_back(std::move(r));
}

void diff_run(const Options& opt, const Imported& base, const Imported& cand,
              std::vector<Row>& rows, std::vector<std::string>& notes) {
  for (const auto& [name, bv] : base.gauges) {
    auto it = cand.gauges.find(name);
    if (it == cand.gauges.end()) {
      notes.push_back(base.run + ": gauge '" + name + "' missing from candidate");
      continue;
    }
    score(opt, rows, base.run, name, bv, it->second, direction_of(name));
  }
  for (const auto& [name, cv] : cand.gauges)
    if (!base.gauges.count(name))
      notes.push_back(base.run + ": gauge '" + name + "' new in candidate");
  for (const auto& [name, bv] : base.counters) {
    auto it = cand.counters.find(name);
    if (it == cand.counters.end()) {
      notes.push_back(base.run + ": counter '" + name + "' missing from candidate");
      continue;
    }
    score(opt, rows, base.run, name, static_cast<double>(bv),
          static_cast<double>(it->second), Direction::Info);
  }
  for (const auto& [name, bh] : base.histograms) {
    auto it = cand.histograms.find(name);
    if (it == cand.histograms.end()) {
      notes.push_back(base.run + ": histogram '" + name + "' missing from candidate");
      continue;
    }
    const HistogramRow& ch = it->second;
    const double bmean = bh.count ? bh.sum / static_cast<double>(bh.count) : 0;
    const double cmean = ch.count ? ch.sum / static_cast<double>(ch.count) : 0;
    score(opt, rows, base.run, name + "(mean)", bmean, cmean, Direction::LowerBetter);
  }
}

const char* dir_tag(Direction d) {
  switch (d) {
    case Direction::HigherBetter: return "higher-better";
    case Direction::LowerBetter: return "lower-better";
    default: return "info";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold-pct" && i + 1 < argc) {
      opt.threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (a == "--prefix" && i + 1 < argc) {
      opt.prefixes.emplace_back(argv[++i]);
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown option '%s'\n", a.c_str());
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--threshold-pct P] [--prefix S]... [--quiet]\n");
    return 2;
  }

  std::vector<Imported> base_runs, cand_runs;
  try {
    base_runs = dlr::telemetry::import_jsonl_runs(read_file(files[0]));
    cand_runs = dlr::telemetry::import_jsonl_runs(read_file(files[1]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }

  std::map<std::string, const Imported*> cand_by_name;
  for (const auto& r : cand_runs) cand_by_name.emplace(r.run, &r);

  std::vector<Row> rows;
  std::vector<std::string> notes;
  int matched_runs = 0;
  for (const auto& b : base_runs) {
    auto it = cand_by_name.find(b.run);
    if (it == cand_by_name.end()) {
      notes.push_back("run '" + b.run + "' missing from candidate (skipped)");
      continue;
    }
    ++matched_runs;
    diff_run(opt, b, *it->second, rows, notes);
  }

  int regressions = 0;
  for (const auto& r : rows) {
    const double pct = harm(r) * 100.0;
    if (r.regression) ++regressions;
    if (r.regression || !opt.quiet)
      std::printf("%s  %-52s %14.4f -> %14.4f  %+8.1f%%  [%s]%s\n", r.run.c_str(),
                  r.name.c_str(), r.base, r.cand, pct, dir_tag(r.dir),
                  r.regression ? "  REGRESSION" : "");
  }
  if (!opt.quiet)
    for (const auto& n : notes) std::printf("note: %s\n", n.c_str());

  std::printf("bench_diff: %d run(s) matched, %zu metric(s) compared, %d regression(s) "
              "(threshold %.1f%%)\n",
              matched_runs, rows.size(), regressions, opt.threshold_pct);
  if (matched_runs == 0 && !base_runs.empty()) {
    std::fprintf(stderr, "bench_diff: no runs aligned between the two files\n");
    return 2;
  }
  return regressions ? 1 : 0;
}
