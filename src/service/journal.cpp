#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "transport/frame.hpp"  // crc32

namespace dlr::service {

namespace {

constexpr char kMagic[4] = {'D', 'L', 'R', 'J'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 8;

[[noreturn]] void throw_io(const std::string& op, const std::string& path) {
  throw std::runtime_error("journal: " + op + " " + path + ": " + std::strerror(errno));
}

void write_fsync_close(int fd, const Bytes& data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto k = ::write(fd, data.data() + off, data.size() - off);
    if (k < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_io("write", path);
    }
    off += static_cast<std::size_t>(k);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_io("fsync", path);
  }
  if (::close(fd) != 0) throw_io("close", path);
}

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = (slash == std::string::npos) ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("open(dir)", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_io("fsync(dir)", dir);
  }
  ::close(fd);
}

}  // namespace

void Journal::save(const Bytes& payload) const {
  if (!attached()) return;
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  w.u8(kVersion);
  w.u32(transport::crc32(payload));
  w.u64(payload.size());
  w.raw(payload);
  const Bytes record = w.take();

  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) throw_io("open", tmp);
  write_fsync_close(fd, record, tmp);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) throw_io("rename", tmp);
  fsync_parent_dir(path_);
}

std::optional<Bytes> Journal::load() const {
  if (!attached()) return std::nullopt;
  static telemetry::Counter& corrupt =
      telemetry::Registry::global().counter("svc.journal_corrupt");
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;  // missing = no journal
  Bytes record;
  std::uint8_t buf[4096];
  for (;;) {
    const auto k = ::read(fd, buf, sizeof(buf));
    if (k < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      corrupt.add();
      return std::nullopt;
    }
    if (k == 0) break;
    record.insert(record.end(), buf, buf + k);
  }
  ::close(fd);

  if (record.size() < kHeaderBytes ||
      std::memcmp(record.data(), kMagic, sizeof(kMagic)) != 0 ||
      record[4] != kVersion) {
    corrupt.add();
    return std::nullopt;
  }
  try {
    ByteReader r(record);
    std::uint8_t magic[4];
    for (auto& b : magic) b = r.u8();
    (void)r.u8();  // version, checked above
    const std::uint32_t crc = r.u32();
    const std::uint64_t len = r.u64();
    if (len != record.size() - kHeaderBytes) {
      corrupt.add();
      return std::nullopt;
    }
    Bytes payload(record.begin() + kHeaderBytes, record.end());
    if (transport::crc32(payload) != crc) {
      corrupt.add();
      return std::nullopt;
    }
    return payload;
  } catch (const std::exception&) {
    corrupt.add();
    return std::nullopt;
  }
}

void Journal::remove() const {
  if (!attached()) return;
  ::unlink(path_.c_str());
  ::unlink((path_ + ".tmp").c_str());
}

const std::string& ensure_dir(const std::string& dir) {
  if (!dir.empty() && ::mkdir(dir.c_str(), 0700) != 0 && errno != EEXIST)
    throw_io("mkdir", dir);
  return dir;
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return (dir.back() == '/') ? dir + name : dir + "/" + name;
}

}  // namespace dlr::service
