file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_proactive.dir/bench_f11_proactive.cpp.o"
  "CMakeFiles/bench_f11_proactive.dir/bench_f11_proactive.cpp.o.d"
  "bench_f11_proactive"
  "bench_f11_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
