// Deeper property and failure-injection tests for DLR: protocol misuse,
// corrupted messages, determinism, mode equivalence, key persistence, and
// the keygen-leakage boundary (why b0 must be small).
#include <gtest/gtest.h>

#include "analysis/attacks.hpp"
#include "group/mock_group.hpp"
#include "leakage/game.hpp"
#include "schemes/dlr.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;
using Core = DlrCore<MockGroup>;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

// ---- determinism -------------------------------------------------------------

TEST(DlrDeterminismTest, SameSeedSameTranscript) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys1 = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5000);
  auto sys2 = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5000);
  Rng rng(5001);
  const auto c = Core::enc(gg, sys1.pk(), gg.gt_random(rng), rng);
  const auto r1 = sys1.run_period(c);
  const auto r2 = sys2.run_period(c);
  EXPECT_EQ(r1.transcript.serialize(), r2.transcript.serialize());
  EXPECT_TRUE(gg.gt_eq(r1.dec_output, r2.dec_output));
}

TEST(DlrDeterminismTest, DifferentSeedsDifferentKeys) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys1 = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5002);
  auto sys2 = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5003);
  EXPECT_FALSE(gg.gt_eq(sys1.pk().z, sys2.pk().z));
}

// ---- mode equivalence ----------------------------------------------------------

TEST(DlrModeTest, PlainAndCompactDecryptTheSameCiphertexts) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(5100);
  auto kg = Core::gen(gg, prm, rng);
  DlrParty1<MockGroup> p1_plain(gg, prm, kg.pk, kg.sk1, P1Mode::Plain, Rng(1));
  DlrParty1<MockGroup> p1_compact(gg, prm, kg.pk, kg.sk1, P1Mode::Compact, Rng(2));
  DlrParty2<MockGroup> p2a(gg, prm, kg.sk2, Rng(3));
  DlrParty2<MockGroup> p2b(gg, prm, kg.sk2, Rng(4));

  for (int i = 0; i < 10; ++i) {
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kg.pk, m, rng);
    EXPECT_TRUE(gg.gt_eq(p1_plain.dec_finish(p2a.dec_respond(p1_plain.dec_round1(c))), m));
    EXPECT_TRUE(
        gg.gt_eq(p1_compact.dec_finish(p2b.dec_respond(p1_compact.dec_round1(c))), m));
  }
  // Compact mode's recovered share equals the original.
  const auto rec = p1_compact.recover_share_for_test();
  EXPECT_TRUE(gg.g_eq(rec.phi, kg.sk1.phi));
  for (std::size_t i = 0; i < prm.ell; ++i) EXPECT_TRUE(gg.g_eq(rec.a[i], kg.sk1.a[i]));
}

// ---- protocol misuse / corruption -----------------------------------------------

TEST(DlrMisuseTest, CorruptedDecReplyEitherThrowsOrMisdecrypts) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5200);
  Rng rng(5201);
  const auto m = gg.gt_random(rng);
  const auto c = Core::enc(gg, sys.pk(), m, rng);
  const auto msg1 = sys.p1().dec_round1(c);
  auto reply = sys.p2().dec_respond(msg1);
  // Flip one byte somewhere in the middle of a serialized element.
  reply[reply.size() / 2] ^= 0x01;
  try {
    const auto out = sys.p1().dec_finish(reply);
    EXPECT_FALSE(gg.gt_eq(out, m));  // silent corruption must not decrypt
  } catch (const std::invalid_argument&) {
    SUCCEED();  // rejected at deserialization -- also fine
  }
}

TEST(DlrMisuseTest, TruncatedMessagesThrow) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5202);
  Rng rng(5203);
  const auto c = Core::enc(gg, sys.pk(), gg.gt_random(rng), rng);
  auto msg1 = sys.p1().dec_round1(c);
  msg1.resize(msg1.size() / 2);
  EXPECT_THROW((void)sys.p2().dec_respond(msg1), std::out_of_range);
  auto msg3 = sys.p1().ref_round1();
  msg3.resize(3);
  EXPECT_THROW((void)sys.p2().ref_respond(msg3), std::out_of_range);
}

TEST(DlrMisuseTest, CrossedProtocolMessagesRejected) {
  // Feeding a refresh message into the decryption responder (and vice versa)
  // must fail cleanly -- the widths differ.
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 5204);
  Rng rng(5205);
  const auto c = Core::enc(gg, sys.pk(), gg.gt_random(rng), rng);
  const auto dec_msg = sys.p1().dec_round1(c);
  const auto ref_msg = sys.p1().ref_round1();
  EXPECT_THROW((void)sys.p2().dec_respond(ref_msg), std::exception);
  EXPECT_THROW((void)sys.p2().ref_respond(dec_msg), std::exception);
}

// ---- persistence -----------------------------------------------------------------

TEST(DlrPersistenceTest, KeysRoundTripThroughBytes) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(5300);
  const auto kg = Core::gen(gg, prm, rng);

  ByteWriter w;
  Core::ser_pk(gg, w, kg.pk);
  Core::ser_sk1(gg, w, kg.sk1);
  Core::ser_sk2(gg, w, kg.sk2);
  const Bytes stored = w.take();

  ByteReader r(stored);
  const auto pk = Core::deser_pk(gg, r);
  const auto sk1 = Core::deser_sk1(gg, r);
  const auto sk2 = Core::deser_sk2(gg, r);
  EXPECT_TRUE(r.done());

  // Reconstructed devices still decrypt.
  DlrParty1<MockGroup> p1(gg, prm, pk, sk1, P1Mode::Plain, Rng(1));
  DlrParty2<MockGroup> p2(gg, prm, sk2, Rng(2));
  const auto m = gg.gt_random(rng);
  const auto c = Core::enc(gg, pk, m, rng);
  EXPECT_TRUE(gg.gt_eq(p1.dec_finish(p2.dec_respond(p1.dec_round1(c))), m));
}

// ---- the keygen-leakage boundary (why b0 = O(log n), not more) ---------------------

/// Leaks alpha and g2 from the keygen randomness; with those the adversary
/// decrypts anything: m = B * e(A, g2)^{-alpha}. This is exactly the attack
/// the b0 bound rules out -- with b0 = O(log n) it is impossible, and the
/// test verifies both directions.
class KeygenThief final : public leakage::CmlGame<MockGroup>::Adversary {
 public:
  using Game = leakage::CmlGame<MockGroup>;
  explicit KeygenThief(MockGroup gg) : gg_(std::move(gg)) {}

  std::optional<std::pair<leakage::LeakageFn, std::size_t>> keygen_leakage(
      const Game::View&) override {
    // gen_randomness layout: alpha (sc), s_1..s_l, g2, ... -- we take the
    // prefix containing alpha plus, further on, g2; simplest is to leak the
    // whole prefix up to and including g2.
    const std::size_t bytes = gg_.sc_bytes() * (1 + 21) + gg_.g_bytes();
    return std::make_pair(leakage::window_bits(0, 8 * bytes), 8 * bytes);
  }
  bool wants_more_leakage(const Game::View&) override { return false; }
  Game::LeakagePlan plan(std::size_t, const Game::View&) override { return {}; }
  std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View&,
                                                          Rng& rng) override {
    m0_ = gg_.gt_random(rng);
    m1_ = gg_.gt_random(rng);
    return {m0_, m1_};
  }
  int guess(const Game::View& view, const Game::Ciphertext& ch) override {
    ByteReader r(view.keygen_leakage);
    const auto alpha = gg_.sc_deser(r);
    for (int i = 0; i < 21; ++i) (void)gg_.sc_deser(r);  // skip s_i
    const auto g2 = gg_.g_deser(r);
    const auto m = gg_.gt_mul(ch.b, gg_.gt_inv(gg_.gt_pow(gg_.pair(ch.a, g2), alpha)));
    return gg_.gt_eq(m, m1_) ? 1 : 0;
  }

 private:
  MockGroup gg_;
  group::MockGT m0_{}, m1_{};
};

TEST(KeygenLeakageTest, LargeB0IsFatal) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  ASSERT_EQ(prm.ell, 21u) << "KeygenThief hardcodes the share width";
  std::size_t wins = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t huge_b0 = 8 * (gg.sc_bytes() * 22 + gg.g_bytes());
    typename leakage::CmlGame<MockGroup>::Config cfg{prm,     P1Mode::Plain, huge_b0, 0, 0,
                                                     false, 5400 + i};
    leakage::CmlGame<MockGroup> game(gg, cfg);
    KeygenThief adv(gg);
    const auto res = game.run(adv);
    ASSERT_FALSE(res.aborted);
    wins += res.adversary_won ? 1 : 0;
  }
  EXPECT_EQ(wins, 10u);  // keygen leakage beyond the bound breaks everything
}

TEST(KeygenLeakageTest, SmallB0Aborts) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  // With the paper's b0 = O(log n) the same adversary is rejected.
  typename leakage::CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 6, 0, 0, false, 5500};
  leakage::CmlGame<MockGroup> game(gg, cfg);
  KeygenThief adv(gg);
  EXPECT_TRUE(game.run(adv).aborted);
}

}  // namespace
}  // namespace dlr::schemes
