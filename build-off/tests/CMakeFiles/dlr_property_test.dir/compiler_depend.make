# Empty compiler generated dependencies file for dlr_property_test.
# This may be replaced when dependencies are built.
