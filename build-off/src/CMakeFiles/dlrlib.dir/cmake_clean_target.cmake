file(REMOVE_RECURSE
  "libdlrlib.a"
)
