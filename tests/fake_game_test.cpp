// Tests for the Section 6 reduction machinery: the Z_p linear solver and the
// distinguisher's fake game (uniform sk1, constrained sk2, planted BDDH
// tuple), including the statistical claims the proof relies on.
#include <gtest/gtest.h>

#include "analysis/fake_game.hpp"
#include "analysis/stats.hpp"

namespace dlr::analysis {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_mock_tiny;
using group::MockGroup;

// ---- MatZp ------------------------------------------------------------------

TEST(MatZpTest, SolvesSquareSystem) {
  // over Z_101: x + 2y = 5, 3x + 4y = 6  =>  x = 99, y = 54? solve & verify.
  MatZp m(2, 2, 101);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = 4;
  Rng rng(1);
  const auto x = m.sample_solution({5, 6}, rng);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(((*x)[0] + 2 * (*x)[1]) % 101, 5u);
  EXPECT_EQ((3 * (*x)[0] + 4 * (*x)[1]) % 101, 6u);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(MatZpTest, DetectsInconsistency) {
  // x + y = 1, 2x + 2y = 3 (mod 101): inconsistent.
  MatZp m(2, 2, 101);
  m.at(0, 0) = 1;
  m.at(0, 1) = 1;
  m.at(1, 0) = 2;
  m.at(1, 1) = 2;
  Rng rng(2);
  EXPECT_FALSE(m.sample_solution({1, 3}, rng).has_value());
  EXPECT_EQ(m.rank(), 1u);
  // Consistent dependent system is fine.
  EXPECT_TRUE(m.sample_solution({1, 2}, rng).has_value());
}

TEST(MatZpTest, UnderdeterminedSolutionsAreRandomizedButValid) {
  // One equation, three unknowns: x + y + z = 7 (mod 1009).
  MatZp m(1, 3, 1009);
  m.at(0, 0) = m.at(0, 1) = m.at(0, 2) = 1;
  Rng rng(3);
  std::set<std::vector<std::uint64_t>> seen;
  for (int i = 0; i < 20; ++i) {
    const auto x = m.sample_solution({7}, rng);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(((*x)[0] + (*x)[1] + (*x)[2]) % 1009, 7u);
    seen.insert(*x);
  }
  EXPECT_GT(seen.size(), 15u);  // free variables actually vary
}

TEST(MatZpTest, UniformSolutionDistribution) {
  // x + y = 0 mod 5: solutions {(t, -t)}; x-coordinate must be uniform.
  MatZp m(1, 2, 5);
  m.at(0, 0) = m.at(0, 1) = 1;
  Rng rng(4);
  EmpiricalDist d;
  for (int i = 0; i < 5000; ++i) d.add((*m.sample_solution({0}, rng))[0]);
  EXPECT_LT(d.chi_square_uniform(5), chi_square_critical_99(4));
}

TEST(MatZpTest, RhsSizeMismatchThrows) {
  MatZp m(2, 2, 101);
  Rng rng(5);
  EXPECT_THROW((void)m.sample_solution({1}, rng), std::invalid_argument);
}

// ---- BDDH tuples ---------------------------------------------------------------

TEST(BddhTest, RealTupleHasCorrectTarget) {
  const auto gg = make_mock();
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    const auto tup = sample_bddh(gg, true, rng);
    // T == e(g^a, g^b)^c == e(g,g)^{abc}: verify via dlogs (mock oracle).
    const auto abc = gg.sc_mul(gg.sc_mul(gg.dlog(tup.ga), gg.dlog(tup.gb)), gg.dlog(tup.gc));
    EXPECT_EQ(gg.dlog_gt(tup.t), abc);
  }
}

// ---- the fake game ---------------------------------------------------------------

schemes::DlrParams params_for(const MockGroup& gg) {
  return schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

TEST(FakeGameTest, FakePeriodIsProtocolConsistent) {
  const auto gg = make_mock();
  const auto prm = params_for(gg);
  Rng rng(20);
  const auto tup = sample_bddh(gg, true, rng);
  FakeGame fake(gg, prm, tup);
  for (int i = 0; i < 20; ++i) {
    const auto p = fake.fake_period(rng);
    EXPECT_TRUE(fake.period_consistent(p)) << "iteration " << i;
    EXPECT_EQ(p.sk2.s.size(), prm.ell);
  }
}

TEST(FakeGameTest, PlantedChallengeDecryptsUnderRealTuple) {
  // With T = e(g,g)^{abc}, the planted challenge is a *valid* encryption of
  // m_b under the planted pk -- the fake and real games coincide on it.
  const auto gg = make_mock();
  const auto prm = params_for(gg);
  Rng rng(21);
  const auto tup = sample_bddh(gg, true, rng);
  FakeGame fake(gg, prm, tup);
  const auto m = gg.gt_random(rng);
  const auto ch = fake.challenge(m);
  // m = B / e(A, g)^{dlog z}: use mock dlogs to check it is consistent:
  // B - m == pair(gc, g)^ab => dlog: t == c * a * b.
  EXPECT_EQ(gg.sc_sub(gg.dlog_gt(ch.b), gg.dlog_gt(m)), gg.dlog_gt(tup.t));
  const auto ab = gg.sc_mul(gg.dlog(tup.ga), gg.dlog(tup.gb));
  EXPECT_EQ(gg.dlog_gt(fake.pk().z), ab);
}

TEST(FakeGameTest, RefreshReplyDecryptsToNextPhi) {
  const auto gg = make_mock();
  const auto prm = params_for(gg);
  Rng rng(22);
  FakeGame fake(gg, prm, sample_bddh(gg, true, rng));
  const auto p = fake.fake_period(rng);

  // Next-period sk2 (in the proof this is the next solved s'; any works).
  std::vector<std::uint64_t> s_next;
  for (std::size_t i = 0; i < prm.ell; ++i) s_next.push_back(gg.sc_random(rng));
  const auto f = fake.refresh_reply(p, s_next);

  // Dec'(f) must equal Phi * prod a'_i^{s'_i} / prod a_i^{s_i}.
  schemes::HpskeG<MockGroup> hg(gg, prm.kappa);
  std::vector<group::MockG> aprime;
  for (const auto& fp : p.fprime) aprime.push_back(hg.dec(p.sigma, fp));
  auto expect = gg.g_mul(p.sk1.phi, gg.g_multi_pow(aprime, s_next));
  expect = gg.g_mul(expect, gg.g_inv(gg.g_multi_pow(p.sk1.a, p.sk2.s)));
  EXPECT_TRUE(gg.g_eq(hg.dec(p.sigma, f), expect));
}

TEST(FakeGameTest, FullRankResamplingIsRare) {
  const auto gg = make_mock();
  const auto prm = params_for(gg);
  Rng rng(23);
  FakeGame fake(gg, prm, sample_bddh(gg, true, rng));
  std::size_t total_resamples = 0;
  for (int i = 0; i < 10; ++i) total_resamples += fake.fake_period(rng).resamples;
  EXPECT_LE(total_resamples, 2u);  // rank deficiency has probability ~ l/p
}

// ---- the proof's statistical claims, measured on a tiny group ----------------------

TEST(FakeGameStatsTest, Sk2MarginalMatchesRealGame) {
  // Proof step (i): the joint distribution of (pk, C*, sk2) is identical in
  // aux and fake. Here: the marginal of sk2's first coordinate is uniform in
  // both the real scheme and the fake game.
  const auto gg = make_mock_tiny(101);
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  EmpiricalDist real_s, fake_s;
  for (std::uint64_t i = 0; i < 1500; ++i) {
    auto sys = schemes::DlrSystem<MockGroup>::create(gg, prm, schemes::P1Mode::Plain,
                                                     40000 + i);
    real_s.add(sys.p2().share().s[0]);
    Rng rng(50000 + i);
    FakeGame fake(gg, prm, sample_bddh(gg, true, rng));
    fake_s.add(fake.fake_period(rng).sk2.s[0]);
  }
  const auto crit = chi_square_critical_99(100);
  EXPECT_LT(real_s.chi_square_uniform(101), crit);
  EXPECT_LT(fake_s.chi_square_uniform(101), crit);
  EXPECT_LT(real_s.statistical_distance(fake_s), 0.15);  // sampling noise scale
}

TEST(FakeGameStatsTest, RandomTMakesChallengeIndependentOfMessage) {
  // The second half of the argument: when T is uniform, the challenge hides
  // m_b information-theoretically -- B = m_b * T is uniform whatever m_b is.
  const auto gg = make_mock_tiny(101);
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  const auto m0 = gg.gt_pow(gg.gt_gen(), 3);
  const auto m1 = gg.gt_pow(gg.gt_gen(), 77);
  EmpiricalDist d0, d1;
  Rng rng(600);
  for (int i = 0; i < 4000; ++i) {
    FakeGame f0(gg, prm, sample_bddh(gg, false, rng));
    d0.add(gg.dlog_gt(f0.challenge(m0).b));
    FakeGame f1(gg, prm, sample_bddh(gg, false, rng));
    d1.add(gg.dlog_gt(f1.challenge(m1).b));
  }
  const auto crit = chi_square_critical_99(100);
  EXPECT_LT(d0.chi_square_uniform(101), crit);
  EXPECT_LT(d1.chi_square_uniform(101), crit);
  EXPECT_LT(d0.statistical_distance(d1), 0.15);
}

}  // namespace
}  // namespace dlr::analysis
