# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-off/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-off/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auxiliary_device "/root/repo/build-off/examples/auxiliary_device")
set_tests_properties(example_auxiliary_device PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leaky_storage "/root/repo/build-off/examples/leaky_storage")
set_tests_properties(example_leaky_storage PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ibe_mail "/root/repo/build-off/examples/ibe_mail")
set_tests_properties(example_ibe_mail PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leakage_game_demo "/root/repo/build-off/examples/leakage_game_demo")
set_tests_properties(example_leakage_game_demo PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paramgen "/root/repo/build-off/examples/paramgen")
set_tests_properties(example_paramgen PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_symmetric_pair "/root/repo/build-off/examples/symmetric_pair")
set_tests_properties(example_symmetric_pair PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;15;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_process "/root/repo/build-off/examples/two_process")
set_tests_properties(example_two_process PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;16;dlr_example;/root/repo/examples/CMakeLists.txt;0;")
