// BilinearGroup backend tests: the concept itself, the mock model's exactness,
// the Tate facade's serialization and invalid-input rejection, and
// cross-backend algebraic agreement.
#include <gtest/gtest.h>

#include "group/bilinear.hpp"
#include "group/mock_group.hpp"
#include "group/tate_group.hpp"

namespace dlr::group {
namespace {

using crypto::Rng;

static_assert(BilinearGroup<MockGroup>);
static_assert(BilinearGroup<TateSS256>);
static_assert(BilinearGroup<TateSS512>);
static_assert(BilinearGroup<TateSS1024>);

// A generic battery every backend must pass.
template <BilinearGroup GG>
void backend_battery(const GG& gg, std::uint64_t seed, int iters) {
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const auto s = gg.sc_random(rng);
    const auto t = gg.sc_random(rng);
    const auto p = gg.g_random(rng);
    const auto q = gg.g_random(rng);

    // Exponent laws in G.
    EXPECT_TRUE(gg.g_eq(gg.g_pow(p, gg.sc_add(s, t)),
                        gg.g_mul(gg.g_pow(p, s), gg.g_pow(p, t))));
    EXPECT_TRUE(gg.g_eq(gg.g_pow(gg.g_pow(p, s), t), gg.g_pow(p, gg.sc_mul(s, t))));
    EXPECT_TRUE(gg.g_is_id(gg.g_mul(p, gg.g_inv(p))));
    EXPECT_TRUE(gg.g_eq(gg.g_mul(p, gg.g_id()), p));

    // Bilinearity via the facade.
    const auto e_pq = gg.pair(p, q);
    EXPECT_TRUE(gg.gt_eq(gg.pair(gg.g_pow(p, s), q), gg.gt_pow(e_pq, s)));
    EXPECT_TRUE(gg.gt_eq(gg.pair(p, gg.g_pow(q, t)), gg.gt_pow(e_pq, t)));
    EXPECT_TRUE(gg.gt_eq(gg.pair(gg.g_mul(p, q), p),
                         gg.gt_mul(gg.pair(p, p), gg.pair(q, p))));

    // GT laws.
    const auto z = gg.gt_random(rng);
    EXPECT_TRUE(gg.gt_is_id(gg.gt_mul(z, gg.gt_inv(z))));
    EXPECT_TRUE(gg.gt_eq(gg.gt_pow(z, gg.sc_add(s, t)),
                         gg.gt_mul(gg.gt_pow(z, s), gg.gt_pow(z, t))));

    // Scalar field laws.
    if (!gg.sc_is_zero(s)) {
      EXPECT_TRUE(gg.sc_eq(gg.sc_mul(s, gg.sc_inv(s)), gg.sc_from_u64(1)));
    }
    EXPECT_TRUE(gg.sc_is_zero(gg.sc_add(s, gg.sc_neg(s))));
  }
  // e(g, g) is the GT generator and is not the identity.
  EXPECT_TRUE(gg.gt_eq(gg.pair(gg.g_gen(), gg.g_gen()), gg.gt_gen()));
  EXPECT_FALSE(gg.gt_is_id(gg.gt_gen()));
}

template <BilinearGroup GG>
void serialization_battery(const GG& gg, std::uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < 10; ++i) {
    const auto s = gg.sc_random(rng);
    const auto p = gg.g_random(rng);
    const auto z = gg.gt_random(rng);

    ByteWriter w;
    gg.sc_ser(w, s);
    gg.g_ser(w, p);
    gg.gt_ser(w, z);
    EXPECT_EQ(w.size(), gg.sc_bytes() + gg.g_bytes() + gg.gt_bytes());

    ByteReader r(w.bytes());
    EXPECT_TRUE(gg.sc_eq(gg.sc_deser(r), s));
    EXPECT_TRUE(gg.g_eq(gg.g_deser(r), p));
    EXPECT_TRUE(gg.gt_eq(gg.gt_deser(r), z));
    EXPECT_TRUE(r.done());
  }
  // Identity round-trips too.
  ByteWriter w;
  gg.g_ser(w, gg.g_id());
  ByteReader r(w.bytes());
  EXPECT_TRUE(gg.g_is_id(gg.g_deser(r)));
}

// Multi-exponentiation agrees with the naive product of powers.
template <BilinearGroup GG>
void multi_pow_battery(const GG& gg, std::uint64_t seed, int iters, std::size_t max_terms) {
  Rng rng(seed);
  for (int it = 0; it < iters; ++it) {
    const std::size_t n = 1 + rng.below(max_terms);
    std::vector<typename GG::G> as;
    std::vector<typename GG::GT> ts;
    std::vector<typename GG::Scalar> ss;
    for (std::size_t i = 0; i < n; ++i) {
      as.push_back(gg.g_random(rng));
      ts.push_back(gg.gt_random(rng));
      ss.push_back(gg.sc_random(rng));
    }
    auto naive_g = gg.g_id();
    auto naive_t = gg.gt_id();
    for (std::size_t i = 0; i < n; ++i) {
      naive_g = gg.g_mul(naive_g, gg.g_pow(as[i], ss[i]));
      naive_t = gg.gt_mul(naive_t, gg.gt_pow(ts[i], ss[i]));
    }
    EXPECT_TRUE(gg.g_eq(gg.g_multi_pow(as, ss), naive_g));
    EXPECT_TRUE(gg.gt_eq(gg.gt_multi_pow(ts, ss), naive_t));
  }
  // Empty and zero-scalar edge cases.
  EXPECT_TRUE(gg.g_is_id(gg.g_multi_pow({}, {})));
  const auto p = gg.g_random(rng);
  const std::vector<typename GG::G> one_base{p};
  const std::vector<typename GG::Scalar> zero{gg.sc_from_u64(0)};
  EXPECT_TRUE(gg.g_is_id(gg.g_multi_pow(one_base, zero)));
}

// Exponent edge cases every backend must get right.
template <BilinearGroup GG>
void exponent_edges(const GG& gg, std::uint64_t seed) {
  Rng rng(seed);
  const auto p = gg.g_random(rng);
  const auto z = gg.gt_random(rng);
  EXPECT_TRUE(gg.g_is_id(gg.g_pow(p, gg.sc_from_u64(0))));
  EXPECT_TRUE(gg.g_eq(gg.g_pow(p, gg.sc_from_u64(1)), p));
  EXPECT_TRUE(gg.gt_is_id(gg.gt_pow(z, gg.sc_from_u64(0))));
  // Exponent r (== 0 mod r) annihilates; exponent r-1 is the inverse.
  const auto r_minus_1 = gg.sc_neg(gg.sc_from_u64(1));
  EXPECT_TRUE(gg.g_eq(gg.g_pow(p, r_minus_1), gg.g_inv(p)));
  EXPECT_TRUE(gg.gt_eq(gg.gt_pow(z, r_minus_1), gg.gt_inv(z)));
  // Identity element behaves absorbingly.
  EXPECT_TRUE(gg.g_is_id(gg.g_pow(gg.g_id(), gg.sc_random(rng))));
  EXPECT_TRUE(gg.g_is_id(gg.g_inv(gg.g_id())));
  // Pairing with identity gives gt identity.
  EXPECT_TRUE(gg.gt_is_id(gg.pair(gg.g_id(), p)));
  EXPECT_TRUE(gg.gt_is_id(gg.pair(p, gg.g_id())));
}

TEST(MockGroupTest, ExponentEdges) { exponent_edges(make_mock(), 520); }
TEST(TateSS256Test, ExponentEdges) { exponent_edges(make_tate_ss256(), 521); }
TEST(TateSS512Test, ExponentEdges) { exponent_edges(make_tate_ss512(), 522); }

TEST(RngSmokeTest, OsEntropyProducesDistinctStreams) {
  auto a = Rng::from_os_entropy();
  auto b = Rng::from_os_entropy();
  EXPECT_NE(a.bytes(16), b.bytes(16));
}

TEST(MockGroupTest, MultiPow) { multi_pow_battery(make_mock(), 510, 50, 12); }
TEST(TateSS256Test, MultiPow) { multi_pow_battery(make_tate_ss256(), 511, 4, 6); }
TEST(TateSS512Test, MultiPow) { multi_pow_battery(make_tate_ss512(), 512, 1, 4); }

TEST(MockGroupTest, MultiPowSizeMismatchThrows) {
  const auto gg = make_mock();
  Rng rng(513);
  const std::vector<MockG> as{gg.g_random(rng)};
  const std::vector<std::uint64_t> ss;
  EXPECT_THROW((void)gg.g_multi_pow(as, ss), std::invalid_argument);
}

TEST(MockGroupTest, Battery) { backend_battery(make_mock(), 500, 200); }
TEST(MockGroupTest, Serialization) { serialization_battery(make_mock(), 501); }
TEST(TateSS256Test, Battery) { backend_battery(make_tate_ss256(), 502, 4); }
TEST(TateSS256Test, Serialization) { serialization_battery(make_tate_ss256(), 503); }
TEST(TateSS512Test, Battery) { backend_battery(make_tate_ss512(), 504, 1); }
TEST(TateSS512Test, Serialization) { serialization_battery(make_tate_ss512(), 505); }
TEST(TateSS1024Test, Serialization) { serialization_battery(make_tate_ss1024(), 509); }

TEST(MockGroupTest, RejectsCompositeOrder) {
  EXPECT_THROW(MockGroup(1000), std::invalid_argument);
  EXPECT_THROW(MockGroup(1), std::invalid_argument);
}

TEST(MockGroupTest, RejectsHugeOrder) {
  EXPECT_THROW(MockGroup(std::uint64_t{1} << 63), std::invalid_argument);
}

TEST(MockGroupTest, DlogOracle) {
  const auto gg = make_mock_tiny();
  Rng rng(506);
  const auto s = gg.sc_random(rng);
  EXPECT_EQ(gg.dlog(gg.g_pow(gg.g_gen(), s)), s);
}

TEST(MockGroupTest, DeserRejectsOutOfRange) {
  const auto gg = make_mock_tiny(101);
  ByteWriter w;
  w.u64(101);  // == order, out of range
  ByteReader r(w.bytes());
  EXPECT_THROW((void)gg.g_deser(r), std::invalid_argument);
}

TEST(IsPrimeU64Test, SmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(101));
  EXPECT_TRUE(is_prime_u64(1009));
  EXPECT_FALSE(is_prime_u64(1001));  // 7*11*13
  EXPECT_TRUE(is_prime_u64((std::uint64_t{1} << 61) - 1));
  EXPECT_FALSE(is_prime_u64((std::uint64_t{1} << 62) - 1));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(is_prime_u64(561));
}

TEST(TateSS256Test, DeserRejectsBadCompressedPoints) {
  const auto gg = make_tate_ss256();
  const auto& ctx = gg.ctx();
  // Bad flag byte.
  {
    ByteWriter w;
    w.u8(7);
    w.raw(mpint::UInt<4>::from_u64(1).to_bytes());
    ByteReader r(w.bytes());
    EXPECT_THROW((void)gg.g_deser(r), std::invalid_argument);
  }
  // x >= q.
  {
    ByteWriter w;
    w.u8(2);
    mpint::UInt<4> big{};
    for (auto& l : big.limb) l = ~0ull;
    w.raw(big.to_bytes());
    ByteReader r(w.bytes());
    EXPECT_THROW((void)gg.g_deser(r), std::invalid_argument);
  }
  // x with x^3 + x a quadratic non-residue: search a small one.
  for (std::uint64_t xi = 2;; ++xi) {
    const auto x = ctx.fq().from_uint(mpint::UInt<4>::from_u64(xi));
    if (ctx.curve().lift_x(x, false)) continue;
    ByteWriter w;
    w.u8(2);
    w.raw(mpint::UInt<4>::from_u64(xi).to_bytes());
    ByteReader r(w.bytes());
    EXPECT_THROW((void)gg.g_deser(r), std::invalid_argument);
    break;
  }
}

TEST(TateSS256Test, DeserRejectsNonNormOneGt) {
  const auto gg = make_tate_ss256();
  const auto& fq = gg.ctx().fq();
  // Find re with 1 - re^2 a non-residue: such a compressed GT element cannot
  // exist on the norm-1 circle.
  for (std::uint64_t a = 2;; ++a) {
    const auto re = fq.from_uint(mpint::UInt<4>::from_u64(a));
    const auto im2 = fq.sub(fq.one(), fq.sqr(re));
    if (fq.is_zero(im2) || fq.sqrt(im2)) continue;
    ByteWriter w;
    w.u8(2);
    w.raw(mpint::UInt<4>::from_u64(a).to_bytes());
    ByteReader r(w.bytes());
    EXPECT_THROW((void)gg.gt_deser(r), std::invalid_argument);
    break;
  }
  // Bad flag.
  ByteWriter w;
  w.u8(0);
  w.raw(mpint::UInt<4>::from_u64(1).to_bytes());
  ByteReader r(w.bytes());
  EXPECT_THROW((void)gg.gt_deser(r), std::invalid_argument);
}

TEST(TateSS256Test, ScalarDeserRejectsOverflow) {
  const auto gg = make_tate_ss256();
  ByteWriter w;
  mpint::UInt<1> big{};
  big.limb[0] = ~0ull;
  w.raw(big.to_bytes());
  ByteReader r(w.bytes());
  EXPECT_THROW((void)gg.sc_deser(r), std::invalid_argument);
}

TEST(CrossBackendTest, MockAgreesWithItselfOnProtocolAlgebra) {
  // The algebra used by the DLR decryption identity, checked on the mock:
  // B * prod e(A,a_i)^{s_i} / e(A, Phi) == m when Phi = msk * prod a^s.
  const auto gg = make_mock();
  Rng rng(508);
  const auto alpha = gg.sc_random(rng);
  const auto g2 = gg.g_random(rng);
  const auto msk = gg.g_pow(g2, alpha);
  const std::size_t ell = 5;
  std::vector<MockG> a;
  std::vector<std::uint64_t> s;
  auto phi = msk;
  for (std::size_t i = 0; i < ell; ++i) {
    a.push_back(gg.g_random(rng));
    s.push_back(gg.sc_random(rng));
    phi = gg.g_mul(phi, gg.g_pow(a[i], s[i]));
  }
  const auto t = gg.sc_random(rng);
  const auto m = gg.gt_random(rng);
  const auto g1 = gg.g_pow(gg.g_gen(), alpha);
  const auto z = gg.pair(g1, g2);
  const auto A = gg.g_pow(gg.g_gen(), t);
  const auto B = gg.gt_mul(m, gg.gt_pow(z, t));
  auto acc = B;
  for (std::size_t i = 0; i < ell; ++i) acc = gg.gt_mul(acc, gg.gt_pow(gg.pair(A, a[i]), s[i]));
  acc = gg.gt_mul(acc, gg.gt_inv(gg.pair(A, phi)));
  EXPECT_TRUE(gg.gt_eq(acc, m));
}

}  // namespace
}  // namespace dlr::group
