#include "telemetry/trace.hpp"

#if DLR_TELEMETRY_ENABLED

#include <chrono>

namespace dlr::telemetry {

/// Monotonic nanoseconds since the first call (process-local epoch keeps the
/// exported numbers small and diff-friendly). Shared with EventLog so event
/// timestamps line up with span timestamps.
std::int64_t trace_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch).count();
}

namespace {

std::int64_t now_ns() { return trace_now_ns(); }

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-process random word seeding span/trace id generation, so two
/// processes exporting into one merged trace never mint colliding ids
/// (DESIGN.md §10: within a process ids are counter-unique; across processes
/// the 32 random high bits make collision negligible).
std::uint64_t process_word() {
  static const std::uint64_t w = [] {
    const auto t = std::chrono::high_resolution_clock::now().time_since_epoch().count();
    std::uint64_t x = mix64(static_cast<std::uint64_t>(t));
    // The address of a function-local is ASLR-perturbed per process; folding
    // it in decorrelates forks that share a clock reading.
    int probe = 0;
    x ^= mix64(reinterpret_cast<std::uintptr_t>(&probe));
    return x | 1;  // never zero
  }();
  return w;
}

// Per-thread stack of open spans; the back is the current span.
thread_local std::vector<Span> t_open;

}  // namespace

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

std::uint64_t Tracer::begin(const char* label) {
  return begin_remote(label, TraceContext{});
}

std::uint64_t Tracer::begin_remote(const char* label, TraceContext parent) {
  const std::uint64_t n = next_id_.fetch_add(1, std::memory_order_relaxed);
  Span s;
  // High 32 bits: per-process random; low 32: counter. Unique in-process,
  // collision-negligible across processes of one merged trace.
  s.id = (process_word() << 32) | (n & 0xffffffffULL);
  if (!t_open.empty()) {
    // Local nesting always wins: an inner span is a child of the innermost
    // open span and inherits its trace, remote context or not.
    s.parent = t_open.back().id;
    s.trace_id = t_open.back().trace_id;
  } else if (parent.active()) {
    s.parent = parent.span_id;
    s.trace_id = parent.trace_id;
  } else {
    s.parent = 0;
    std::uint64_t tid = mix64(process_word() ^ (n * 0x9e3779b97f4a7c15ULL));
    if (tid == 0) tid = 1;
    s.trace_id = tid;
  }
  s.label = label;
  s.start_ns = now_ns();
  const std::uint64_t id = s.id;
  t_open.push_back(std::move(s));
  return id;
}

void Tracer::end(std::uint64_t id) {
  while (!t_open.empty()) {
    Span s = std::move(t_open.back());
    t_open.pop_back();
    s.end_ns = now_ns();
    const bool match = s.id == id;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (finished_.size() < kMaxFinished)
        finished_.push_back(std::move(s));
      else
        ++dropped_;
    }
    if (match) return;
  }
}

TraceContext Tracer::current() const {
  if (t_open.empty()) return {};
  return TraceContext{t_open.back().trace_id, t_open.back().id};
}

void Tracer::attr_add(const std::string& key, double delta) {
  if (t_open.empty()) return;
  auto& attrs = t_open.back().attrs;
  for (auto& [k, v] : attrs) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  attrs.emplace_back(key, delta);
}

bool Tracer::in_span() const { return !t_open.empty(); }

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return finished_;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::reset() {
  t_open.clear();
  std::lock_guard<std::mutex> lk(mu_);
  finished_.clear();
  dropped_ = 0;
}

}  // namespace dlr::telemetry

#endif  // DLR_TELEMETRY_ENABLED
