// Exporters -- pillar 3 of the telemetry layer.
//
// Output formats over a (Snapshot, spans) pair:
//   * to_text:          human-readable summary (counters/gauges/histograms +
//                       an indented span tree), for terminal inspection;
//   * to_jsonl:         machine-readable JSON lines, one object per metric /
//                       span -- the diffable BENCH_*.json format the bench
//                       binaries write via --json;
//   * to_chrome_trace:  Chrome about:tracing / Perfetto trace_event JSON;
//                       the multi-process overload merges span sets from
//                       several processes into one trace (distinct pids);
//   * to_prometheus:    Prometheus text exposition format, served by the
//                       admin endpoint (DESIGN.md §10).
//
// import_jsonl parses to_jsonl output back (exact round-trip, histograms
// included), which is what makes bench output comparable across PRs by
// tools/bench_diff rather than by eyeball. parse_prometheus and
// prometheus_lint close the loop on the scrape side: the CI observability
// job lints a live scrape and cross-checks counter values.
//
// The exporters compile identically with telemetry off -- they simply see
// empty snapshots -- so a --json flag keeps working in a no-op build.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace dlr::telemetry {

/// Run-level metadata stamped into the first line of every JSONL export.
struct ExportMeta {
  std::string run;  // e.g. the bench binary's name
};

[[nodiscard]] std::string to_text(const Snapshot& snap, const std::vector<Span>& spans);
[[nodiscard]] std::string to_jsonl(const ExportMeta& meta, const Snapshot& snap,
                                   const std::vector<Span>& spans);
[[nodiscard]] std::string to_chrome_trace(const std::vector<Span>& spans);

/// One process's contribution to a merged multi-process Chrome trace.
struct ProcessSpans {
  int pid = 1;
  std::string name;  // emitted as process_name metadata, e.g. "P1 client"
  std::vector<Span> spans;
};
/// Merge span sets from several processes into one Chrome trace. Spans keep
/// their own ids, so a cross-process trace (propagated via TraceContext)
/// renders as one tree across pid lanes.
[[nodiscard]] std::string to_chrome_trace(const std::vector<ProcessSpans>& processes);

/// Snapshot the global registry + tracer and write JSONL to `path`.
/// Returns false on I/O failure.
bool export_global_jsonl(const std::string& path, const std::string& run_label);

/// Parsed-back view of a JSONL export. Histograms round-trip exactly
/// (bounds/buckets/sum/count); span ids/trace ids are parsed as full 64-bit
/// integers (never through a double, which would shave their random high
/// bits).
struct Imported {
  std::string run;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramRow> histograms;
  std::vector<Span> spans;  // attrs + trace ids included
};
[[nodiscard]] Imported import_jsonl(const std::string& text);

/// Split a concatenated multi-run JSONL file (the committed BENCH_*.json
/// artifacts append one document per bench run, each starting with a meta
/// line) into one Imported per run. Lines before the first meta line form a
/// nameless run of their own.
[[nodiscard]] std::vector<Imported> import_jsonl_runs(const std::string& text);

/// Prometheus text exposition of a snapshot. Metric names are sanitized
/// (dots -> underscores); rendered "{k=v}" qualifiers become label sets;
/// histograms expand to cumulative _bucket{le=...} / _sum / _count series.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Strict structural check of Prometheus exposition text: every line must be
/// a HELP/TYPE comment or a well-formed sample, names must be legal, TYPE
/// must precede its samples, histogram buckets must be cumulative and end in
/// +Inf with _count equal to the +Inf bucket. Returns "" if valid, else a
/// one-line diagnosis ("line N: ...").
[[nodiscard]] std::string prometheus_lint(const std::string& text);

/// Sample values keyed by name-with-labels exactly as written
/// ("svc_requests" or "net_bytes_sent{dir=\"tx\"}").
[[nodiscard]] std::map<std::string, double> parse_prometheus(const std::string& text);

[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace dlr::telemetry
