// T2 -- tolerated-leakage comparison (paper Section 1.2.1, Theorem 4.1, and
// the Section 4 rate derivation).
//
// Our rows are computed from the *implementation's* serialized secret-memory
// sizes (byte-exact), at several leakage parameters lambda; comparator rows
// quote the published constants the paper cites: o(1) for BKKV [11] and LRW
// [30], 1/258 for LLW [29], 1/672 for DLWW [17], none for DHLW [15].
#include "bench_util.hpp"
#include "group/tate_group.hpp"
#include "leakage/rates.hpp"
#include "schemes/dlr.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;

  banner("T2: tolerated leakage fraction per phase",
         "paper Section 1.2.1 + Theorem 4.1 + Section 4 rates");

  const auto gg = group::make_tate_ss512();
  const std::size_t n = gg.scalar_bits();

  // ---- our schemes, measured --------------------------------------------------
  Table ours({"scheme / mode", "lambda", "rho1 (normal)", "rho1 (refresh)", "rho2 (normal)",
              "rho2 (refresh)", "m1 bits", "m2 bits"});
  for (const std::size_t lambda : {n, 4 * n, 16 * n, 64 * n}) {
    const auto prm = schemes::DlrParams::derive(n, lambda);
    for (const auto mode : {schemes::P1Mode::Compact, schemes::P1Mode::Plain}) {
      auto sys = schemes::DlrSystem<group::TateSS512>::create(gg, prm, mode, 1);
      const auto m1n = sys.p1().secret_bits(net::Phase::Normal);
      const auto m1r = sys.p1().secret_bits(net::Phase::Refresh);
      const auto m2n = sys.p2().secret_bits(net::Phase::Normal);
      const auto m2r = sys.p2().secret_bits(net::Phase::Refresh);
      const auto r = leakage::measured_rates(prm.b1_bits(), 8 * prm.ell * gg.sc_bytes(), m1n,
                                             m1r, m2n, m2r);
      ours.row({std::string("DLR ") +
                    (mode == schemes::P1Mode::Compact ? "compact" : "plain"),
                std::to_string(lambda), fmt(r.p1, 4), fmt(r.p1_ref, 4), fmt(r.p2, 4),
                fmt(r.p2_ref, 4), std::to_string(m1n), std::to_string(m2n)});
    }
  }
  ours.print();

  std::printf("\nPaper formulas at the same lambda (Theorem 4.1):\n");
  Table formulas({"lambda", "rho1 = l/(l+4n)", "rho1_ref = l/(2(l+3n)+n)", "rho2", "rho2_ref"});
  for (const std::size_t lambda : {n, 4 * n, 16 * n, 64 * n}) {
    const auto prm = schemes::DlrParams::derive(n, lambda);
    const auto r = leakage::paper_rates(prm);
    formulas.row({std::to_string(lambda), fmt(r.p1, 4), fmt(r.p1_ref, 4), fmt(r.p2, 4),
                  fmt(r.p2_ref, 4)});
  }
  formulas.print();

  // ---- the comparison table the paper draws in Section 1.2.1 ---------------------
  std::printf("\nComparison with prior work (published constants, quoted by the paper):\n");
  Table cmp({"scheme", "model", "leak during refresh", "leak other times", "msk leakage",
             "security"});
  for (const auto& row : leakage::comparator_table()) {
    cmp.row({row.scheme, row.model,
             row.refresh_rate < 0 ? "o(1)" : fmt(row.refresh_rate, 4),
             fmt(row.normal_rate, 2), row.leaks_from_msk ? "yes" : "-", row.security});
  }
  cmp.print();

  std::printf(
      "\nShape check (Section 1.2.1): as lambda grows, our rho1 -> 1 and rho1^ref ->\n"
      "1/2 (optimal: during refresh both the old and new share are in memory),\n"
      "while the best single-processor constants are 1/258 [29] and 1/672 [17],\n"
      "and rho2 = 1 at all times (P2's whole share may leak every period).\n");
  return 0;
}
