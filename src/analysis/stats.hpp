// Statistical estimators used by the refresh-invariance and entropy
// experiments: empirical distributions over small domains, statistical
// distance, min-/collision-entropy estimates, chi-square uniformity tests and
// Wilson confidence intervals for adversary advantage.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace dlr::analysis {

/// Empirical distribution over an arbitrary u64-encoded domain.
class EmpiricalDist {
 public:
  void add(std::uint64_t v) {
    ++counts_[v];
    ++n_;
  }

  [[nodiscard]] std::size_t samples() const { return n_; }
  [[nodiscard]] const std::map<std::uint64_t, std::size_t>& counts() const { return counts_; }

  /// Empirical statistical distance to another empirical distribution.
  [[nodiscard]] double statistical_distance(const EmpiricalDist& other) const;

  /// Empirical statistical distance to the uniform distribution on a domain
  /// of the given size.
  [[nodiscard]] double distance_to_uniform(std::size_t domain_size) const;

  /// Chi-square statistic against uniform on `domain_size` outcomes
  /// (degrees of freedom = domain_size - 1).
  [[nodiscard]] double chi_square_uniform(std::size_t domain_size) const;

  /// Empirical min-entropy: -log2(max_v Pr[v]).
  [[nodiscard]] double min_entropy() const;

  /// Empirical collision (Renyi-2) entropy: -log2(sum_v Pr[v]^2).
  [[nodiscard]] double collision_entropy() const;

  /// Shannon entropy in bits.
  [[nodiscard]] double shannon_entropy() const;

 private:
  std::map<std::uint64_t, std::size_t> counts_;
  std::size_t n_ = 0;
};

/// Wilson score interval for a binomial proportion.
struct WilsonInterval {
  double center;
  double low;
  double high;
};
WilsonInterval wilson(std::size_t successes, std::size_t trials, double z = 1.96);

/// Distinguishing advantage estimate from game wins: adv = 2*p_win - 1, with
/// a Wilson interval mapped through the same transform.
struct AdvantageEstimate {
  double advantage;
  double low;
  double high;
  std::size_t wins;
  std::size_t trials;
};
AdvantageEstimate advantage_from_wins(std::size_t wins, std::size_t trials);

/// 99% critical value of the chi-square distribution (Wilson-Hilferty
/// approximation) -- good to a few percent for df >= 5, ample for our tests.
double chi_square_critical_99(std::size_t df);

}  // namespace dlr::analysis
