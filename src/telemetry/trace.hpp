// Span tracer -- pillar 2 of the telemetry layer.
//
// Nested wall-clock spans with labels ("keygen", "dec.round1", "refresh.P1",
// ...) and per-span numeric attribute bags (bytes sent, group ops, leakage
// bits). Spans nest via a thread-local stack: the innermost open span is the
// "current" span, and Channel::send etc. attach attributes to it blindly --
// attaching outside any span is a silent no-op, so library code never needs
// to know whether a caller is tracing.
//
// Cross-process propagation (DESIGN.md §10): every span belongs to a trace,
// identified by a 64-bit trace id minted when a root span opens. Span ids
// carry a per-process random high half, so ids minted in different processes
// never collide and a merged export still forms one well-defined tree.
// Tracer::current() yields the innermost (trace, span) pair as a
// TraceContext; a frame carries it across the wire, and the receiving
// process opens its handler span with begin_remote(), adopting the sender's
// trace id and parenting under the sender's span. Everything nested below
// the handler inherits the trace automatically via the thread-local stack.
//
// Finished spans accumulate in a bounded global buffer (completion order)
// from which the exporters emit a flat span table or Chrome trace_event
// JSON. With -DDLR_TELEMETRY=OFF everything here is an inline no-op.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"  // DLR_TELEMETRY_ENABLED

namespace dlr::telemetry {

/// Propagation handle: "the caller's position in its trace". Zero-valued
/// fields mean "no active trace" -- begin_remote() on an empty context
/// behaves exactly like opening a fresh root span. Plain data in both build
/// modes, so wire code handles it without #if.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root span (possibly of a remote parent)
  std::uint64_t trace_id = 0;
  std::string label;
  std::int64_t start_ns = 0;  // process-local monotonic epoch
  std::int64_t end_ns = 0;
  std::vector<std::pair<std::string, double>> attrs;

  [[nodiscard]] double duration_ms() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
  [[nodiscard]] double attr_or(const std::string& key, double dflt) const {
    for (const auto& [k, v] : attrs)
      if (k == key) return v;
    return dflt;
  }
};

#if DLR_TELEMETRY_ENABLED

/// Nanoseconds on the tracer's process-local monotonic epoch -- the same
/// clock span start_ns/end_ns are stamped with, so EventLog timestamps
/// correlate with spans in one export.
[[nodiscard]] std::int64_t trace_now_ns();

class Tracer {
 public:
  [[nodiscard]] static Tracer& global();

  /// Open a span as a child of the current one; returns its id. A root span
  /// (nothing open on this thread) mints a fresh trace id.
  std::uint64_t begin(const char* label);
  /// Open a span whose parent lives in another process/thread: adopt the
  /// remote context's trace id and parent under its span id. With an empty
  /// context this is exactly begin() (fresh root). The span still pushes onto
  /// THIS thread's stack, so nested local spans join the remote trace.
  std::uint64_t begin_remote(const char* label, TraceContext parent);
  /// Close span `id`. Spans close LIFO; any inner spans still open are closed
  /// too (defensive -- ScopedSpan makes mismatches impossible).
  void end(std::uint64_t id);

  /// (trace, span) of this thread's innermost open span; empty outside spans.
  [[nodiscard]] TraceContext current() const;

  /// Accumulate `delta` onto attribute `key` of the current span (innermost
  /// open span of this thread). No-op outside any span.
  void attr_add(const std::string& key, double delta);
  [[nodiscard]] bool in_span() const;

  /// Finished spans, in completion order.
  [[nodiscard]] std::vector<Span> spans() const;
  /// Spans discarded after the buffer hit kMaxFinished (soak-run safety).
  [[nodiscard]] std::size_t dropped() const;

  /// Drop all finished spans and this thread's open stack. Call between
  /// measured sections, never while other threads hold open spans.
  void reset();

  static constexpr std::size_t kMaxFinished = std::size_t{1} << 18;

 private:
  mutable std::mutex mu_;
  std::vector<Span> finished_;
  std::size_t dropped_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
};

/// RAII span. Label must be a literal / outlive-the-call string.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* label) : id_(Tracer::global().begin(label)) {}
  /// Open under a remote parent (cross-process request handling).
  ScopedSpan(const char* label, TraceContext parent)
      : id_(Tracer::global().begin_remote(label, parent)) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { Tracer::global().end(id_); }

  void attr_add(const std::string& key, double delta) {
    Tracer::global().attr_add(key, delta);
  }

 private:
  std::uint64_t id_;
};

/// Attach to whatever span is currently open (no-op outside spans).
inline void span_attr_add(const std::string& key, double delta) {
  Tracer::global().attr_add(key, delta);
}

#else  // !DLR_TELEMETRY_ENABLED

inline std::int64_t trace_now_ns() { return 0; }

class Tracer {
 public:
  [[nodiscard]] static Tracer& global() {
    static Tracer t;
    return t;
  }
  std::uint64_t begin(const char*) { return 0; }
  std::uint64_t begin_remote(const char*, TraceContext) { return 0; }
  void end(std::uint64_t) {}
  [[nodiscard]] TraceContext current() const { return {}; }
  void attr_add(const std::string&, double) {}
  [[nodiscard]] bool in_span() const { return false; }
  [[nodiscard]] std::vector<Span> spans() const { return {}; }
  [[nodiscard]] std::size_t dropped() const { return 0; }
  void reset() {}
  static constexpr std::size_t kMaxFinished = 0;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const char*, TraceContext) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void attr_add(const char*, double) {}
  void attr_add(const std::string&, double) {}
};

inline void span_attr_add(const std::string&, double) {}
inline void span_attr_add(const char*, double) {}

#endif  // DLR_TELEMETRY_ENABLED

}  // namespace dlr::telemetry
