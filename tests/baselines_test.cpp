// Tests for the comparison baselines (ElGamal-GT, BHHO, bitwise BHHO) and
// for the structural cost facts the T1 experiment reports.
#include <gtest/gtest.h>

#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/baselines.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;

TEST(ElGamalGTTest, RoundTrip) {
  const auto gg = make_mock();
  ElGamalGT<MockGroup> eg(gg);
  Rng rng(2300);
  auto [pk, sk] = eg.gen(rng);
  for (int i = 0; i < 20; ++i) {
    const auto m = gg.gt_random(rng);
    EXPECT_TRUE(gg.gt_eq(eg.dec(sk, eg.enc(pk, m, rng)), m));
  }
}

TEST(ElGamalGTTest, WrongKeyFails) {
  const auto gg = make_mock();
  ElGamalGT<MockGroup> eg(gg);
  Rng rng(2301);
  auto [pk, sk] = eg.gen(rng);
  auto [pk2, sk2] = eg.gen(rng);
  const auto m = gg.gt_random(rng);
  EXPECT_FALSE(gg.gt_eq(eg.dec(sk2, eg.enc(pk, m, rng)), m));
}

TEST(BhhoTest, RoundTripAcrossWidths) {
  const auto gg = make_mock();
  Rng rng(2302);
  for (std::size_t w : {1u, 2u, 5u, 16u}) {
    Bhho<MockGroup> scheme(gg, w);
    auto [pk, sk] = scheme.gen(rng);
    for (int i = 0; i < 10; ++i) {
      const auto m = gg.g_random(rng);
      EXPECT_TRUE(gg.g_eq(scheme.dec(sk, scheme.enc(pk, m, rng)), m));
    }
  }
}

TEST(BhhoTest, ZeroWidthRejected) {
  EXPECT_THROW(Bhho<MockGroup>(make_mock(), 0), std::invalid_argument);
}

TEST(BhhoTest, WidthMismatchRejected) {
  const auto gg = make_mock();
  Rng rng(2303);
  Bhho<MockGroup> s3(gg, 3);
  Bhho<MockGroup> s4(gg, 4);
  auto [pk3, sk3] = s3.gen(rng);
  auto [pk4, sk4] = s4.gen(rng);
  const auto ct = s3.enc(pk3, gg.g_random(rng), rng);
  EXPECT_THROW((void)s4.dec(sk4, ct), std::invalid_argument);
}

TEST(BitwiseBhhoTest, RoundTrip) {
  const auto gg = make_mock();
  BitwiseBhho<MockGroup> scheme(gg, 3);
  Rng rng(2304);
  auto [pk, sk] = scheme.gen(rng);
  const Bytes msg{0xde, 0xad, 0xbe, 0xef, 0x00, 0xff};
  const auto ct = scheme.enc(pk, msg, rng);
  EXPECT_EQ(ct.size(), 8 * msg.size());
  EXPECT_EQ(scheme.dec(sk, ct), msg);
}

TEST(BitwiseBhhoTest, EmptyMessage) {
  const auto gg = make_mock();
  BitwiseBhho<MockGroup> scheme(gg, 2);
  Rng rng(2305);
  auto [pk, sk] = scheme.gen(rng);
  EXPECT_TRUE(scheme.dec(sk, scheme.enc(pk, {}, rng)).empty());
}

// ---- structural cost facts used by experiment T1 -----------------------------------

TEST(CostModelTest, BitwiseCostsScaleWithMessageBits) {
  using CG = group::CountingGroup<MockGroup>;
  CG gg(make_mock());
  Rng rng(2306);
  const std::size_t width = 4;
  BitwiseBhho<CG> scheme(gg, width);
  auto [pk, sk] = scheme.gen(rng);
  gg.reset_counts();
  const Bytes msg(16, 0xa5);  // 128 bits
  (void)scheme.enc(pk, msg, rng);
  // (width + 1) exponentiations per bit: the omega(n)-per-plaintext profile.
  EXPECT_EQ(gg.counts().exps(), 128 * (width + 1));
}

TEST(CostModelTest, ElGamalConstantCost) {
  using CG = group::CountingGroup<MockGroup>;
  CG gg(make_mock());
  Rng rng(2307);
  ElGamalGT<CG> eg(gg);
  auto [pk, sk] = eg.gen(rng);
  const auto m = gg.gt_random(rng);
  gg.reset_counts();
  (void)eg.enc(pk, m, rng);
  EXPECT_EQ(gg.counts().gt_pow, 2u);  // c1 = g^t and h^t: constant-cost enc
  EXPECT_EQ(gg.counts().pairings, 0u);
}

TEST(CostModelTest, CiphertextSizes) {
  const auto gg = make_mock();
  ElGamalGT<MockGroup> eg(gg);
  Bhho<MockGroup> bh(gg, 8);
  BitwiseBhho<MockGroup> bb(gg, 8);
  EXPECT_EQ(eg.ciphertext_bytes(), 2 * gg.gt_bytes());
  EXPECT_EQ(bh.ciphertext_bytes(), 9 * gg.g_bytes());
  EXPECT_EQ(bb.ciphertext_bytes(16), 128 * 9 * gg.g_bytes());
}

}  // namespace
}  // namespace dlr::schemes
