// F7 -- DLRIBE costs (paper Section 4.2 + Remark 4.1): distributed extract /
// encrypt / decrypt / refresh as a function of the identity bit-length, and
// the leakable-memory accounting for msk shares vs identity-key shares.
#include "bench_util.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr_ibe.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;

  banner("F7: distributed IBE costs vs identity length",
         "paper Section 4.2 + Remark 4.1");

  using GG = group::TateSS256;
  const auto gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);
  crypto::Rng rng(7007);

  Table t({"id bits", "extract ms", "enc ms", "dec ms", "ref msk ms", "ref idkey ms",
           "IBE ct bytes"});

  for (const std::size_t nid : {8u, 16u, 32u, 64u}) {
    auto sys = schemes::DlrIbeSystem<GG>::create(gg, prm, nid, 1000 + nid);
    const std::string id = "alice@example.com";
    const double ext_ms = time_ms([&] { sys.extract(id); }, 1);
    const auto m = gg.gt_random(rng);
    typename schemes::BbIbe<GG>::Ciphertext ct;
    const double enc_ms = time_ms([&] { ct = sys.scheme().enc(sys.pp(), id, m, rng); });
    const double dec_ms = time_ms([&] { sink(sys.decrypt(id, ct)); }, 1);
    const double refmsk_ms = time_ms([&] { sys.refresh_msk(); }, 1);
    const double refid_ms = time_ms([&] { sys.refresh_id(id); }, 1);
    if (!gg.gt_eq(sys.decrypt(id, ct), m)) {
      std::printf("FAIL: IBE correctness\n");
      return 1;
    }
    t.row({std::to_string(nid), fmt(ext_ms), fmt(enc_ms), fmt(dec_ms), fmt(refmsk_ms),
           fmt(refid_ms), fmt_bytes(sys.scheme().bb().ciphertext_bytes())});
  }
  t.print();

  // Remark 4.1 accounting: id-key shares add leakable memory at the same
  // per-unit rate as the msk shares.
  auto sys = schemes::DlrIbeSystem<GG>::create(gg, prm, 32, 4);
  const auto base = sys.p1().normal_snapshot().bits();
  sys.extract("u1");
  const auto one = sys.p1().normal_snapshot().bits();
  sys.extract("u2");
  const auto two = sys.p1().normal_snapshot().bits();

  std::printf("\nLeakable P1 memory (Remark 4.1: leakage from msk AND id-key shares):\n");
  Table mem({"state", "P1 secret bits", "delta"});
  mem.row({"msk share only", std::to_string(base), "-"});
  mem.row({"+ id key u1", std::to_string(one), std::to_string(one - base)});
  mem.row({"+ id key u2", std::to_string(two), std::to_string(two - one)});
  mem.print();

  std::printf(
      "\nShape check: extract and both refresh protocols cost the same (they are\n"
      "the same share-transformation protocol, Section 4.2); only enc/dec grow\n"
      "with the identity length (n_id extra exponentiations / pairings). Each\n"
      "extracted identity adds one unit of leakable share memory, and Remark 4.1's\n"
      "bounds apply per unit.\n");
  return 0;
}
