// Differential tests for the pairing hot-path engine: every optimized path
// (prepared Miller evaluation, norm-1 GT lane, batch-affine normalization,
// Strauss-wNAF multi_mul, parallel fan-out) is checked against its naive
// reference on random inputs, across all three Tate presets and the mock
// backend.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "group/prepared.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"
#include "service/parallel.hpp"

namespace dlr {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_tate_ss256;
using group::MockGroup;

// ---- PreparedPairing vs plain pair ------------------------------------------------

template <std::size_t LQ, std::size_t LR>
void prepared_battery(std::shared_ptr<const pairing::PairingCtx<LQ, LR>> ctx,
                      std::uint64_t seed, int iters) {
  Rng rng(seed);
  const auto& f2 = ctx->fq2();
  for (int i = 0; i < iters; ++i) {
    const auto p = ctx->random_point(rng);
    const auto q = ctx->random_point(rng);
    const pairing::PreparedPairing<LQ, LR> pp(ctx, p);
    EXPECT_TRUE(f2.eq(pp.pair(q), ctx->pair(p, q))) << "iter " << i;
  }
  // Edge cases: either side at infinity, q == p, q == -p (the vertical-line
  // addition step inside Miller).
  const auto p = ctx->random_point(rng);
  const pairing::PreparedPairing<LQ, LR> pp(ctx, p);
  const auto inf = ctx->curve().infinity();
  EXPECT_TRUE(f2.eq(pp.pair(inf), ctx->pair(p, inf)));
  EXPECT_TRUE(f2.eq(pp.pair(p), ctx->pair(p, p)));
  EXPECT_TRUE(f2.eq(pp.pair(ctx->curve().neg(p)), ctx->pair(p, ctx->curve().neg(p))));
  const pairing::PreparedPairing<LQ, LR> pinf(ctx, inf);
  EXPECT_TRUE(f2.eq(pinf.pair(p), ctx->pair(inf, p)));
}

TEST(PreparedPairingTest, MatchesPlainSS256) { prepared_battery(pairing::make_ss256(), 8000, 25); }
TEST(PreparedPairingTest, MatchesPlainSS512) { prepared_battery(pairing::make_ss512(), 8001, 4); }
TEST(PreparedPairingTest, MatchesPlainSS1024) { prepared_battery(pairing::make_ss1024(), 8002, 1); }

TEST(PreparedPairingTest, PairManyMatchesLoop) {
  const auto ctx = pairing::make_ss256();
  Rng rng(8010);
  const auto& f2 = ctx->fq2();
  const auto p = ctx->random_point(rng);
  const pairing::PreparedPairing<4, 1> pp(ctx, p);
  std::vector<pairing::PairingCtx<4, 1>::G> qs;
  for (int i = 0; i < 7; ++i) qs.push_back(ctx->random_point(rng));
  qs.insert(qs.begin() + 3, ctx->curve().infinity());  // infinity mid-batch
  const auto many = pp.pair_many(qs);
  ASSERT_EQ(many.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_TRUE(f2.eq(many[i], ctx->pair(p, qs[i]))) << "coord " << i;
  EXPECT_TRUE(pp.pair_many({}).empty());
}

// ---- PreparedPair wrapper: generic fallback + native forwarding -----------------------

TEST(PreparedPairTest, GenericFallbackOnMock) {
  const auto gg = make_mock();
  Rng rng(8020);
  static_assert(!group::NativePreparedPairing<MockGroup>);
  const auto a = gg.g_random(rng);
  const group::PreparedPair<MockGroup> pa(gg, a);
  std::vector<MockGroup::G> bs;
  for (int i = 0; i < 5; ++i) bs.push_back(gg.g_random(rng));
  for (const auto& b : bs) EXPECT_TRUE(gg.gt_eq(pa.pair(gg, b), gg.pair(a, b)));
  const auto many = pa.pair_many(gg, bs);
  for (std::size_t i = 0; i < bs.size(); ++i)
    EXPECT_TRUE(gg.gt_eq(many[i], gg.pair(a, bs[i])));
}

TEST(PreparedPairTest, NativeForwardThroughCountingGroup) {
  using CG = group::CountingGroup<group::TateSS256>;
  static_assert(group::NativePreparedPairing<CG>);
  const CG gg(make_tate_ss256());
  Rng rng(8021);
  const auto a = gg.g_random(rng);
  const auto b = gg.g_random(rng);
  const group::PreparedPair<CG> pa(gg, a);
  const auto before = gg.snapshot();
  EXPECT_TRUE(gg.gt_eq(pa.pair(gg, b), gg.inner().pair(a, b)));
  std::vector<CG::G> bs{b, gg.g_random(rng), gg.g_random(rng)};
  (void)pa.pair_many(gg, bs);
  // Prepared evaluations are still pairings, semantically: 1 + 3 of them.
  EXPECT_EQ(gg.counts().pairings - before.pairings, 4u);
}

// ---- norm-1 GT lane -------------------------------------------------------------------

TEST(GtFastLaneTest, SqrNorm1MatchesGenericSqr) {
  const auto gg = make_tate_ss256();
  const auto& f2 = gg.ctx().fq2();
  Rng rng(8030);
  for (int i = 0; i < 50; ++i) {
    const auto z = gg.pair(gg.g_random(rng), gg.g_random(rng));
    ASSERT_TRUE(f2.is_norm_one(z));
    EXPECT_TRUE(f2.eq(f2.sqr_norm1(z), f2.sqr(z))) << "iter " << i;
  }
}

TEST(GtFastLaneTest, PowNorm1MatchesGenericPow) {
  const auto gg = make_tate_ss256();
  const auto& f2 = gg.ctx().fq2();
  Rng rng(8031);
  for (int i = 0; i < 25; ++i) {
    const auto z = gg.pair(gg.g_random(rng), gg.g_random(rng));
    const auto e = gg.sc_random(rng);
    EXPECT_TRUE(f2.eq(f2.pow_norm1(z, e), f2.pow(z, e))) << "iter " << i;
  }
  const auto z = gg.pair(gg.g_random(rng), gg.g_random(rng));
  EXPECT_TRUE(f2.eq(f2.pow_norm1(z, decltype(gg.sc_random(rng))::zero()), f2.one()));
}

TEST(GtFastLaneTest, GtPowTakesFastLaneAndFallsBack) {
  const auto gg = make_tate_ss256();
  const auto& f2 = gg.ctx().fq2();
  Rng rng(8032);
  for (int i = 0; i < 25; ++i) {
    const auto z = gg.gt_random(rng);  // valid GT element: norm-1
    const auto e = gg.sc_random(rng);
    EXPECT_TRUE(f2.eq(gg.gt_pow(z, e), f2.pow(z, e))) << "iter " << i;
  }
  // A non-norm-1 element must route through the generic path, not produce
  // garbage via the conjugation shortcut.
  auto raw = f2.random_nonzero(rng);
  while (f2.is_norm_one(raw)) raw = f2.random_nonzero(rng);
  const auto e = gg.sc_random(rng);
  EXPECT_TRUE(f2.eq(gg.gt_pow(raw, e), f2.pow(raw, e)));
}

TEST(GtFastLaneTest, GtMultiPowMatchesNaiveChain) {
  const auto gg = make_tate_ss256();
  Rng rng(8033);
  for (const std::size_t n : {1u, 3u, 10u}) {
    std::vector<group::TateSS256::GT> ts;
    std::vector<group::TateSS256::Scalar> ss;
    for (std::size_t i = 0; i < n; ++i) {
      ts.push_back(gg.gt_random(rng));
      ss.push_back(gg.sc_random(rng));
    }
    if (n >= 3) {
      ss[1] = gg.sc_from_u64(0);  // zero scalar must be skipped correctly
      ts[2] = gg.gt_id();         // identity base
    }
    auto naive = gg.gt_id();
    for (std::size_t i = 0; i < n; ++i) naive = gg.gt_mul(naive, gg.gt_pow(ts[i], ss[i]));
    EXPECT_TRUE(gg.gt_eq(gg.gt_multi_pow(ts, ss), naive)) << "n=" << n;
  }
}

// ---- batch-affine normalization + Strauss multi_mul -----------------------------------

TEST(BatchAffineTest, MatchesSequentialToAffine) {
  const auto ctx = pairing::make_ss256();
  const auto& cv = ctx->curve();
  Rng rng(8040);
  std::vector<ec::JacPoint<4>> js;
  for (int i = 0; i < 9; ++i) {
    auto j = cv.to_jac(ctx->random_point(rng));
    j = cv.dbl(j);  // non-trivial Z
    if (i == 4) j = ec::JacPoint<4>{ctx->fq().one(), ctx->fq().one(), ctx->fq().zero()};
    js.push_back(j);
  }
  const auto batch = cv.batch_to_affine(js);
  ASSERT_EQ(batch.size(), js.size());
  for (std::size_t i = 0; i < js.size(); ++i) EXPECT_EQ(batch[i], cv.to_affine(js[i])) << i;
  EXPECT_TRUE(cv.batch_to_affine({}).empty());
}

TEST(MultiMulTest, MatchesBinaryReference) {
  const auto ctx = pairing::make_ss256();
  const auto& cv = ctx->curve();
  const field::FpCtx<1> zr(ctx->order());
  Rng rng(8041);
  for (const std::size_t n : {1u, 2u, 5u, 12u}) {
    std::vector<ec::AffinePoint<4>> ps;
    std::vector<mpint::UInt<1>> ks;
    for (std::size_t i = 0; i < n; ++i) {
      ps.push_back(ctx->random_point(rng));
      ks.push_back(zr.random_uint(rng));
    }
    if (n >= 5) {
      ks[1] = mpint::UInt<1>::zero();    // zero scalar
      ps[3] = cv.infinity();             // infinity base
    }
    const std::span<const ec::AffinePoint<4>> psp(ps);
    const std::span<const mpint::UInt<1>> ksp(ks);
    EXPECT_EQ(cv.multi_mul(psp, ksp), cv.multi_mul_binary(psp, ksp)) << "n=" << n;
  }
  EXPECT_TRUE(
      cv.multi_mul(std::span<const ec::AffinePoint<4>>{}, std::span<const mpint::UInt<1>>{}).inf);
}

// ---- ParallelFor ----------------------------------------------------------------------

TEST(ParallelForTest, ResultIndependentOfThreadCount) {
  constexpr std::size_t kN = 64;
  std::vector<std::uint64_t> expect(kN);
  for (std::size_t i = 0; i < kN; ++i) expect[i] = i * i + 1;
  for (const int threads : {0, 1, 2, 5}) {
    service::ParallelFor pf(threads);
    std::vector<std::uint64_t> got(kN, 0);
    pf.run(kN, [&](std::size_t i) { got[i] = i * i + 1; });
    EXPECT_EQ(got, expect) << "threads=" << threads;
  }
}

TEST(ParallelForTest, PropagatesBodyException) {
  service::ParallelFor pf(3);
  EXPECT_THROW(
      pf.run(16, [](std::size_t i) {
        if (i == 7) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> hits{0};
  pf.run(8, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
}

TEST(ParallelForTest, NestedRunDoesNotDeadlock) {
  service::ParallelFor pf(2);
  std::atomic<int> hits{0};
  pf.run(4, [&](std::size_t) {
    pf.run(4, [&](std::size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ParallelForTest, EnvKnobParsing) {
  ASSERT_EQ(unsetenv("DLR_PARALLEL"), 0);
  EXPECT_EQ(service::parallel_env_threads(), 0);
  ASSERT_EQ(setenv("DLR_PARALLEL", "0", 1), 0);
  EXPECT_EQ(service::parallel_env_threads(), 0);
  ASSERT_EQ(setenv("DLR_PARALLEL", "off", 1), 0);
  EXPECT_EQ(service::parallel_env_threads(), 0);
  ASSERT_EQ(setenv("DLR_PARALLEL", "3", 1), 0);
  EXPECT_EQ(service::parallel_env_threads(), 3);
  ASSERT_EQ(setenv("DLR_PARALLEL", "on", 1), 0);
  EXPECT_EQ(service::parallel_env_threads(), service::default_workers());
  ASSERT_EQ(setenv("DLR_PARALLEL", "garbage", 1), 0);
  EXPECT_EQ(service::parallel_env_threads(), 0);
  ASSERT_EQ(unsetenv("DLR_PARALLEL"), 0);
}

// End-to-end determinism: the same seeded protocol run produces identical
// outputs with the coordinate fan-out enabled, because every parallel loop
// writes disjoint slots and group arithmetic is exact.
TEST(ParallelForTest, ProtocolOutputsIndependentOfDlrParallel) {
  using Sys = schemes::DlrSystem<MockGroup>;
  const auto gg = make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());

  const auto run_once = [&] {
    auto sys = Sys::create(gg, prm, schemes::P1Mode::Plain, 8060);
    Rng rng(8061);
    std::vector<MockGroup::GT> outs;
    for (int i = 0; i < 3; ++i) {
      const auto m = gg.gt_random(rng);
      outs.push_back(m);
      outs.push_back(sys.decrypt(sys.encrypt(m, rng)));
      sys.refresh();
    }
    return outs;
  };

  // The env var is resolved once per process, so runtime width changes go
  // through the test override hook.
  service::set_parallel_threads_for_test(0);
  const auto serial = run_once();
  service::set_parallel_threads_for_test(3);
  const auto parallel = run_once();
  service::set_parallel_threads_for_test(-1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(gg.gt_eq(serial[i], parallel[i])) << i;
  for (std::size_t i = 0; i + 1 < serial.size(); i += 2)
    EXPECT_TRUE(gg.gt_eq(serial[i], serial[i + 1])) << "decrypt roundtrip " << i;
}

}  // namespace
}  // namespace dlr
