// Fixed-width little-endian multiprecision unsigned integers.
//
// UInt<L> is an array of L 64-bit limbs, limb 0 least significant. All
// arithmetic is value-semantic and allocation-free. Division uses Knuth's
// Algorithm D over 32-bit digits; multiplication is schoolbook (the operand
// sizes in this library -- at most 8 limbs -- make Karatsuba pointless).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"

namespace dlr::mpint {

template <std::size_t L>
struct UInt {
  static_assert(L >= 1);
  std::array<std::uint64_t, L> limb{};

  static constexpr std::size_t kLimbs = L;
  static constexpr std::size_t kBits = 64 * L;

  constexpr UInt() = default;

  static constexpr UInt zero() { return UInt{}; }

  static constexpr UInt from_u64(std::uint64_t v) {
    UInt r;
    r.limb[0] = v;
    return r;
  }

  static constexpr UInt from_limbs(std::initializer_list<std::uint64_t> ls) {
    UInt r;
    std::size_t i = 0;
    for (auto v : ls) {
      if (i >= L) throw std::invalid_argument("UInt::from_limbs: too many limbs");
      r.limb[i++] = v;
    }
    return r;
  }

  [[nodiscard]] constexpr bool is_zero() const {
    for (auto v : limb)
      if (v != 0) return false;
    return true;
  }

  [[nodiscard]] constexpr bool is_odd() const { return (limb[0] & 1) != 0; }

  [[nodiscard]] constexpr bool bit(std::size_t i) const {
    return i < kBits && ((limb[i / 64] >> (i % 64)) & 1) != 0;
  }

  constexpr void set_bit(std::size_t i, bool v) {
    if (i >= kBits) throw std::out_of_range("UInt::set_bit");
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v)
      limb[i / 64] |= mask;
    else
      limb[i / 64] &= ~mask;
  }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] constexpr std::size_t bit_length() const {
    for (std::size_t i = L; i-- > 0;) {
      if (limb[i] != 0) return 64 * i + (64 - static_cast<std::size_t>(__builtin_clzll(limb[i])));
    }
    return 0;
  }

  constexpr auto operator<=>(const UInt& o) const {
    for (std::size_t i = L; i-- > 0;) {
      if (limb[i] != o.limb[i]) return limb[i] <=> o.limb[i];
    }
    return std::strong_ordering::equal;
  }
  constexpr bool operator==(const UInt& o) const = default;

  Bytes to_bytes() const {
    ByteWriter w;
    for (auto v : limb) w.u64(v);
    return w.take();
  }

  static UInt from_bytes(std::span<const std::uint8_t> b) {
    if (b.size() != 8 * L) throw std::invalid_argument("UInt::from_bytes: wrong size");
    UInt r;
    for (std::size_t i = 0; i < L; ++i) {
      std::uint64_t v = 0;
      for (int j = 0; j < 8; ++j) v |= static_cast<std::uint64_t>(b[8 * i + j]) << (8 * j);
      r.limb[i] = v;
    }
    return r;
  }

  [[nodiscard]] std::string to_hex() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string s = "0x";
    bool started = false;
    for (std::size_t i = L; i-- > 0;) {
      for (int nib = 15; nib >= 0; --nib) {
        const auto d = static_cast<unsigned>((limb[i] >> (4 * nib)) & 0xf);
        if (!started && d == 0 && !(i == 0 && nib == 0)) continue;
        started = true;
        s.push_back(kHex[d]);
      }
    }
    return s;
  }
};

// ---- primitive limb ops -----------------------------------------------------

inline std::uint64_t addc(std::uint64_t a, std::uint64_t b, std::uint64_t& carry) {
  const unsigned __int128 s = static_cast<unsigned __int128>(a) + b + carry;
  carry = static_cast<std::uint64_t>(s >> 64);
  return static_cast<std::uint64_t>(s);
}

inline std::uint64_t subb(std::uint64_t a, std::uint64_t b, std::uint64_t& borrow) {
  const unsigned __int128 d =
      static_cast<unsigned __int128>(a) - b - borrow;
  borrow = (static_cast<std::uint64_t>(d >> 64) != 0) ? 1 : 0;
  return static_cast<std::uint64_t>(d);
}

/// hi:lo = a*b
inline void mul64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi, std::uint64_t& lo) {
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  hi = static_cast<std::uint64_t>(p >> 64);
  lo = static_cast<std::uint64_t>(p);
}

// ---- wide ops ---------------------------------------------------------------

template <std::size_t L>
constexpr std::uint64_t add(UInt<L>& r, const UInt<L>& a, const UInt<L>& b) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < L; ++i) r.limb[i] = addc(a.limb[i], b.limb[i], carry);
  return carry;
}

template <std::size_t L>
constexpr std::uint64_t sub(UInt<L>& r, const UInt<L>& a, const UInt<L>& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < L; ++i) r.limb[i] = subb(a.limb[i], b.limb[i], borrow);
  return borrow;
}

template <std::size_t L>
UInt<L> operator+(const UInt<L>& a, const UInt<L>& b) {
  UInt<L> r;
  if (add(r, a, b) != 0) throw std::overflow_error("UInt: addition overflow");
  return r;
}

template <std::size_t L>
UInt<L> operator-(const UInt<L>& a, const UInt<L>& b) {
  UInt<L> r;
  if (sub(r, a, b) != 0) throw std::underflow_error("UInt: subtraction underflow");
  return r;
}

/// Full product, no truncation.
template <std::size_t LA, std::size_t LB>
UInt<LA + LB> mul_wide(const UInt<LA>& a, const UInt<LB>& b) {
  UInt<LA + LB> r{};
  for (std::size_t i = 0; i < LA; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < LB; ++j) {
      std::uint64_t hi, lo;
      mul64(a.limb[i], b.limb[j], hi, lo);
      std::uint64_t c2 = 0;
      r.limb[i + j] = addc(r.limb[i + j], lo, c2);
      std::uint64_t c3 = 0;
      r.limb[i + j + 1] = addc(r.limb[i + j + 1], hi + c2, c3);
      // hi + c2 cannot overflow: hi <= 2^64-2 when both operands are maximal.
      carry = c3;
      for (std::size_t k = i + j + 2; carry != 0 && k < LA + LB; ++k) {
        std::uint64_t c4 = 0;
        r.limb[k] = addc(r.limb[k], carry, c4);
        carry = c4;
      }
    }
  }
  return r;
}

template <std::size_t L>
UInt<L> shl(const UInt<L>& a, std::size_t k) {
  UInt<L> r{};
  const std::size_t limbshift = k / 64, bitshift = k % 64;
  for (std::size_t i = L; i-- > 0;) {
    if (i < limbshift) break;
    std::uint64_t v = a.limb[i - limbshift] << bitshift;
    if (bitshift != 0 && i > limbshift) v |= a.limb[i - limbshift - 1] >> (64 - bitshift);
    r.limb[i] = v;
  }
  return r;
}

template <std::size_t L>
UInt<L> shr(const UInt<L>& a, std::size_t k) {
  UInt<L> r{};
  const std::size_t limbshift = k / 64, bitshift = k % 64;
  for (std::size_t i = 0; i + limbshift < L; ++i) {
    std::uint64_t v = a.limb[i + limbshift] >> bitshift;
    if (bitshift != 0 && i + limbshift + 1 < L) v |= a.limb[i + limbshift + 1] << (64 - bitshift);
    r.limb[i] = v;
  }
  return r;
}

/// Truncate or zero-extend.
template <std::size_t LO, std::size_t LI>
UInt<LO> resize(const UInt<LI>& a) {
  UInt<LO> r{};
  for (std::size_t i = 0; i < LO && i < LI; ++i) r.limb[i] = a.limb[i];
  if constexpr (LI > LO) {
    for (std::size_t i = LO; i < LI; ++i)
      if (a.limb[i] != 0) throw std::overflow_error("UInt::resize: truncation loses bits");
  }
  return r;
}

// ---- division (Knuth Algorithm D over 32-bit digits) ------------------------

namespace detail {

/// In-place digit vectors, least-significant first.
inline void divmod_digits(std::vector<std::uint32_t> u, std::vector<std::uint32_t> v,
                          std::vector<std::uint32_t>& q, std::vector<std::uint32_t>& r) {
  while (!u.empty() && u.back() == 0) u.pop_back();
  while (!v.empty() && v.back() == 0) v.pop_back();
  if (v.empty()) throw std::domain_error("UInt: division by zero");
  if (u.size() < v.size()) {
    q.assign(1, 0);
    r = u.empty() ? std::vector<std::uint32_t>{0} : u;
    return;
  }
  if (v.size() == 1) {
    const std::uint64_t d = v[0];
    q.assign(u.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | u[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    r.assign(1, static_cast<std::uint32_t>(rem));
    return;
  }

  const int s = __builtin_clz(v.back());
  const std::size_t n = v.size(), m = u.size() - n;
  // Normalize so the divisor's top bit is set (s may be 0; guard the shifts).
  std::vector<std::uint32_t> vn(n), un(u.size() + 1, 0);
  for (std::size_t i = n; i-- > 0;) {
    std::uint64_t w = static_cast<std::uint64_t>(v[i]) << s;
    if (s != 0 && i > 0) w |= v[i - 1] >> (32 - s);
    vn[i] = static_cast<std::uint32_t>(w);
  }
  un[u.size()] = (s != 0) ? (u.back() >> (32 - s)) : 0;
  for (std::size_t i = u.size(); i-- > 0;) {
    std::uint64_t w = static_cast<std::uint64_t>(u[i]) << s;
    if (s != 0 && i > 0) w |= u[i - 1] >> (32 - s);
    un[i] = static_cast<std::uint32_t>(w);
  }

  q.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t top = (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = top / vn[n - 1];
    std::uint64_t rhat = top % vn[n - 1];
    while (qhat >= (1ull << 32) ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= (1ull << 32)) break;
    }
    // Multiply and subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    q[j] = static_cast<std::uint32_t>(qhat);
    if (t < 0) {  // Add back.
      --q[j];
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(sum);
        c = sum >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
  }
  // Denormalize remainder.
  r.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = static_cast<std::uint32_t>(
        (un[i] >> s) | (s && i + 1 < un.size() ? (static_cast<std::uint64_t>(un[i + 1]) << (32 - s))
                                               : 0));
  }
}

template <std::size_t L>
std::vector<std::uint32_t> to_digits(const UInt<L>& a) {
  std::vector<std::uint32_t> d(2 * L);
  for (std::size_t i = 0; i < L; ++i) {
    d[2 * i] = static_cast<std::uint32_t>(a.limb[i]);
    d[2 * i + 1] = static_cast<std::uint32_t>(a.limb[i] >> 32);
  }
  return d;
}

template <std::size_t L>
UInt<L> from_digits(const std::vector<std::uint32_t>& d) {
  UInt<L> r{};
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i / 2 >= L) {
      if (d[i] != 0) throw std::overflow_error("UInt::from_digits: overflow");
      continue;
    }
    r.limb[i / 2] |= static_cast<std::uint64_t>(d[i]) << (32 * (i % 2));
  }
  return r;
}

}  // namespace detail

/// Floor division with remainder: a = q*b + r, 0 <= r < b.
template <std::size_t LA, std::size_t LB>
std::pair<UInt<LA>, UInt<LB>> divmod(const UInt<LA>& a, const UInt<LB>& b) {
  std::vector<std::uint32_t> q, r;
  detail::divmod_digits(detail::to_digits(a), detail::to_digits(b), q, r);
  return {detail::from_digits<LA>(q), detail::from_digits<LB>(r)};
}

template <std::size_t LA, std::size_t LB>
UInt<LB> mod(const UInt<LA>& a, const UInt<LB>& m) {
  return divmod(a, m).second;
}

/// (a * b) mod m without Montgomery; for setup/validation paths only.
template <std::size_t L>
UInt<L> mulmod_slow(const UInt<L>& a, const UInt<L>& b, const UInt<L>& m) {
  return mod(mul_wide(a, b), m);
}

/// a^e mod m, square-and-multiply; for setup/validation paths only.
template <std::size_t L, std::size_t LE>
UInt<L> powmod_slow(const UInt<L>& a, const UInt<LE>& e, const UInt<L>& m) {
  UInt<L> result = mod(UInt<L>::from_u64(1), m);
  UInt<L> base = mod(a, m);
  const std::size_t nbits = e.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = mulmod_slow(result, result, m);
    if (e.bit(i)) result = mulmod_slow(result, base, m);
  }
  return result;
}

/// Non-adjacent form with window w: digits in {0, +-1, +-3, ..., +-(2^w-1)},
/// at most one nonzero digit in any w consecutive positions. Shared by the
/// curve layer (wNAF scalar multiplication) and the norm-1 GT fast lane
/// (signed-window exponentiation where inversion is free).
template <std::size_t LE>
std::vector<int> wnaf_digits(const UInt<LE>& k, int w) {
  std::vector<int> out;
  out.reserve(k.bit_length() + 1);
  // Work on a mutable copy wide enough for the +1 carries.
  UInt<LE + 1> v = resize<LE + 1>(k);
  const int mask = (1 << w) - 1;
  while (!v.is_zero()) {
    if (v.is_odd()) {
      int d = static_cast<int>(v.limb[0] & static_cast<std::uint64_t>(mask));
      if (d > (1 << (w - 1))) d -= (1 << w);
      out.push_back(d);
      if (d > 0) {
        sub(v, v, UInt<LE + 1>::from_u64(static_cast<std::uint64_t>(d)));
      } else {
        add(v, v, UInt<LE + 1>::from_u64(static_cast<std::uint64_t>(-d)));
      }
    } else {
      out.push_back(0);
    }
    v = shr(v, 1);
  }
  return out;
}

}  // namespace dlr::mpint
