# Empty dependencies file for group_backend_test.
# This may be replaced when dependencies are built.
