// Leakage-budget-driven refresh scheduler (DESIGN.md §11).
//
// The paper's continual-leakage model (Definition 3.2) charges every
// leakage-producing operation against a per-period budget of ℓ bits; security
// holds while each period leaks at most ℓ. PR 2-5 approximated that with
// client-driven refresh-every-K-decryptions; this scheduler inverts control:
// the SERVER sweeps its keystore and refreshes the keys that have spent the
// largest fraction of their budget, long before any reaches it.
//
// Policy:
//   - A sweep every `sweep_interval` pulls candidates from the Source
//     callback (the keystore reports every key at or above
//     `refresh_threshold` of its budget, most-spent first).
//   - Candidates enter a most-spent-first queue; at most `max_concurrent`
//     refreshes run at once, so a refresh storm can never starve decryption
//     traffic of worker threads or share locks.
//   - A key already queued or in flight is not re-enqueued (dedup), and a
//     failed refresh (e.g. the 2PC lost a race with a client-driven one)
//     simply waits for the next sweep to re-evaluate it.
//
// The scheduler knows nothing about shares or epochs: Source and RefreshFn
// are callbacks, which is what makes the policy unit-testable with plain
// lambdas (tests drive sweeps synchronously via sweep_now()).
//
// Metrics: ks.sched.sweeps, ks.sched.refreshes, ks.sched.failures,
// ks.refresh_backlog (gauge: queued + in-flight).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "keystore/key_id.hpp"

namespace dlr::keystore {

class RefreshScheduler {
 public:
  struct Candidate {
    KeyId id;
    double spent_frac = 0;  // spent_bits / budget_bits, may exceed 1
  };

  /// Keys currently at/above the refresh threshold, any order.
  using Source = std::function<std::vector<Candidate>()>;
  /// Refresh one key; returns success. Must be safe to call concurrently
  /// for DIFFERENT keys (the scheduler never refreshes one key twice at once).
  using RefreshFn = std::function<bool(const KeyId&)>;

  struct Options {
    std::chrono::milliseconds sweep_interval{50};
    std::size_t max_concurrent = 2;
  };

  RefreshScheduler(Source source, RefreshFn refresh, Options opt);
  RefreshScheduler(Source source, RefreshFn refresh);  // default Options
  ~RefreshScheduler();

  RefreshScheduler(const RefreshScheduler&) = delete;
  RefreshScheduler& operator=(const RefreshScheduler&) = delete;

  /// Start the sweeper + worker threads. Idempotent.
  void start();
  /// Stop all threads; in-flight refreshes finish, the queue is dropped.
  void stop();

  /// Run one sweep synchronously on the caller's thread (enqueues only;
  /// workers -- which must be start()ed -- do the refreshing). For tests.
  void sweep_now();

  /// Block until the queue is empty and no refresh is in flight, or until
  /// `deadline_ms` elapses. Returns true if drained.
  bool wait_idle(std::chrono::milliseconds deadline_ms);

  [[nodiscard]] std::uint64_t refreshes() const;
  [[nodiscard]] std::uint64_t failures() const;
  [[nodiscard]] std::size_t backlog() const;  // queued + in flight

 private:
  void sweeper_loop();
  void worker_loop();
  void enqueue_locked(std::vector<Candidate> cands);
  void update_backlog_locked();

  Source source_;
  RefreshFn refresh_;
  Options opt_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes workers (queue) and stop
  std::condition_variable idle_cv_;  // wakes wait_idle
  bool running_ = false;
  bool stopping_ = false;
  std::deque<Candidate> queue_;      // most-spent first
  std::set<KeyId> busy_;             // queued or in flight
  std::size_t in_flight_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t failures_ = 0;

  std::thread sweeper_;
  std::vector<std::thread> workers_;
};

inline RefreshScheduler::RefreshScheduler(Source source, RefreshFn refresh)
    : RefreshScheduler(std::move(source), std::move(refresh), Options{}) {}

}  // namespace dlr::keystore
