#include "analysis/stats.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace dlr::analysis {

double EmpiricalDist::statistical_distance(const EmpiricalDist& other) const {
  if (n_ == 0 || other.n_ == 0) throw std::logic_error("statistical_distance: empty dist");
  std::set<std::uint64_t> keys;
  for (const auto& [k, _] : counts_) keys.insert(k);
  for (const auto& [k, _] : other.counts_) keys.insert(k);
  double sd = 0;
  for (const auto k : keys) {
    const auto it1 = counts_.find(k);
    const auto it2 = other.counts_.find(k);
    const double p1 = it1 == counts_.end() ? 0.0 : static_cast<double>(it1->second) / n_;
    const double p2 =
        it2 == other.counts_.end() ? 0.0 : static_cast<double>(it2->second) / other.n_;
    sd += std::abs(p1 - p2);
  }
  return sd / 2;
}

double EmpiricalDist::distance_to_uniform(std::size_t domain_size) const {
  if (n_ == 0 || domain_size == 0) throw std::logic_error("distance_to_uniform: empty");
  const double u = 1.0 / static_cast<double>(domain_size);
  double sd = 0;
  std::size_t seen = 0;
  for (const auto& [_, c] : counts_) {
    sd += std::abs(static_cast<double>(c) / n_ - u);
    ++seen;
  }
  sd += u * static_cast<double>(domain_size - seen);  // unseen outcomes
  return sd / 2;
}

double EmpiricalDist::chi_square_uniform(std::size_t domain_size) const {
  if (n_ == 0 || domain_size == 0) throw std::logic_error("chi_square_uniform: empty");
  const double expected = static_cast<double>(n_) / static_cast<double>(domain_size);
  double chi = 0;
  std::size_t seen = 0;
  for (const auto& [_, c] : counts_) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
    ++seen;
  }
  chi += expected * static_cast<double>(domain_size - seen);
  return chi;
}

double EmpiricalDist::min_entropy() const {
  if (n_ == 0) throw std::logic_error("min_entropy: empty");
  std::size_t maxc = 0;
  for (const auto& [_, c] : counts_) maxc = std::max(maxc, c);
  return -std::log2(static_cast<double>(maxc) / n_);
}

double EmpiricalDist::collision_entropy() const {
  if (n_ == 0) throw std::logic_error("collision_entropy: empty");
  double sum = 0;
  for (const auto& [_, c] : counts_) {
    const double p = static_cast<double>(c) / n_;
    sum += p * p;
  }
  return -std::log2(sum);
}

double EmpiricalDist::shannon_entropy() const {
  if (n_ == 0) throw std::logic_error("shannon_entropy: empty");
  double h = 0;
  for (const auto& [_, c] : counts_) {
    const double p = static_cast<double>(c) / n_;
    h -= p * std::log2(p);
  }
  return h;
}

WilsonInterval wilson(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) throw std::invalid_argument("wilson: zero trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double half = (z / denom) * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n));
  return {center, std::max(0.0, center - half), std::min(1.0, center + half)};
}

AdvantageEstimate advantage_from_wins(std::size_t wins, std::size_t trials) {
  const auto w = wilson(wins, trials);
  return {2 * w.center - 1, 2 * w.low - 1, 2 * w.high - 1, wins, trials};
}

double chi_square_critical_99(std::size_t df) {
  if (df == 0) throw std::invalid_argument("chi_square_critical_99: zero df");
  // Wilson-Hilferty: chi2_p(df) ~ df * (1 - 2/(9 df) + z_p sqrt(2/(9 df)))^3
  const double d = static_cast<double>(df);
  const double z99 = 2.3263478740408408;
  const double t = 1.0 - 2.0 / (9.0 * d) + z99 * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

}  // namespace dlr::analysis
