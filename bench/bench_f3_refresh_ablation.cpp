// F3 -- the continual-leakage separation: adversary advantage and key
// recovery vs number of leaking periods, with refresh ON vs OFF
// (paper Section 1 motivation + Definition 3.2; the reason refresh exists).
//
// The share-accumulation adversary leaks its full legal budget each period
// (all of sk2, lambda bits of P1's share region). Without refresh the windows
// tile the key and advantage jumps to 1 once coverage hits 100%; with refresh
// the same adversary's advantage stays statistically indistinguishable from 0
// forever, even though its *lifetime* leakage exceeds the key size many times
// over. Runs on the mock group for trial volume; the protocol code is
// identical to the real-pairing build.
#include "analysis/attacks.hpp"
#include "bench_util.hpp"
#include "group/mock_group.hpp"

int main(int argc, char** argv) {
  using namespace dlr;
  using namespace dlr::bench;

  banner("F3: refresh ablation -- advantage vs leaking periods",
         "Definition 3.2 game; Section 1 continual-leakage motivation");

  const auto gg = group::make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  analysis::ShareAccumulationAdversary<group::MockGroup> probe(gg, prm);
  const std::size_t needed = probe.periods_needed();
  const std::size_t trials = 60;

  std::printf("group: %s, l = %zu, lambda = %zu bits/period from P1, full sk2 from P2\n",
              gg.name().c_str(), prm.ell, prm.lambda);
  std::printf("periods needed to tile P1's share region: %zu\n\n", needed);

  Table t({"periods", "coverage of sk1", "refresh", "key recovered", "wins/trials",
           "advantage", "95% CI"});

  for (const double fraction : {0.25, 0.5, 0.75, 1.0, 1.5}) {
    const auto periods = static_cast<std::size_t>(fraction * static_cast<double>(needed));
    for (const bool refresh_on : {false, true}) {
      std::size_t wins = 0, recovered = 0;
      double coverage = 0;
      for (std::size_t i = 0; i < trials; ++i) {
        typename leakage::CmlGame<group::MockGroup>::Config cfg{
            prm, schemes::P1Mode::Plain, 0, 0, 0, !refresh_on,
            0x9e3779b97f4a7c15ull * (i + 1) + periods};
        leakage::CmlGame<group::MockGroup> game(gg, cfg);
        analysis::ShareAccumulationAdversary<group::MockGroup> adv(gg, prm, 0, periods);
        const auto res = game.run(adv);
        if (res.aborted) {
          std::printf("unexpected budget abort\n");
          return 1;
        }
        if (res.adversary_won) ++wins;
        if (adv.key_recovered()) ++recovered;
        if (i == 0) {
          // coverage is deterministic given the period count
          typename leakage::CmlGame<group::MockGroup>::View fake;
          fake.periods.resize(periods);
          coverage = adv.coverage(fake);
        }
      }
      const auto est = analysis::advantage_from_wins(wins, trials);
      t.row({std::to_string(periods), fmt(100 * coverage, 1) + "%",
             refresh_on ? "ON" : "OFF",
             fmt(100.0 * static_cast<double>(recovered) / trials, 0) + "%",
             std::to_string(wins) + "/" + std::to_string(trials), fmt(est.advantage, 3),
             "[" + fmt(est.low, 2) + ", " + fmt(est.high, 2) + "]"});
    }
  }
  t.print();

  // Second axis: time-to-break vs leakage rate (refresh OFF). The periods
  // needed to tile the key scale as 1/bits-per-period -- halving the leakage
  // bound only delays the unrefreshed scheme's fall, it never prevents it.
  std::printf("\nTime-to-break vs per-period leakage (refresh OFF, 20 trials each):\n");
  Table t2({"bits/period from P1", "periods to tile sk1", "key recovered", "advantage"});
  for (const std::size_t bits : {prm.lambda / 4, prm.lambda / 2, prm.lambda}) {
    analysis::ShareAccumulationAdversary<group::MockGroup> sizing(gg, prm, bits);
    const auto need = sizing.periods_needed();
    std::size_t wins = 0, recovered = 0;
    const std::size_t t2_trials = 20;
    for (std::size_t i = 0; i < t2_trials; ++i) {
      typename leakage::CmlGame<group::MockGroup>::Config cfg{
          prm, schemes::P1Mode::Plain, 0, 0, 0, true,
          0xc2b2ae3d27d4eb4full * (i + 1) + bits};
      leakage::CmlGame<group::MockGroup> game(gg, cfg);
      analysis::ShareAccumulationAdversary<group::MockGroup> adv(gg, prm, bits);
      const auto res = game.run(adv);
      wins += res.adversary_won ? 1 : 0;
      recovered += adv.key_recovered() ? 1 : 0;
    }
    const auto est = analysis::advantage_from_wins(wins, t2_trials);
    t2.row({std::to_string(bits), std::to_string(need),
            fmt(100.0 * static_cast<double>(recovered) / t2_trials, 0) + "%",
            fmt(est.advantage, 2)});
  }
  t2.print();

  std::printf(
      "\nShape check: with refresh OFF, advantage jumps to ~1 exactly when window\n"
      "coverage reaches 100%% (key recovered in every trial). With refresh ON the\n"
      "identical adversary -- same budget, same functions -- never recovers a key\n"
      "and its advantage CI straddles 0 at every horizon. Lifetime leakage at the\n"
      "longest horizon is far larger than |sk1| + |sk2|: leakage is bounded per\n"
      "period, unbounded over the lifetime (the continual-memory-leakage model).\n");
  export_json_if_requested(argc, argv, "bench_f3_refresh_ablation");
  return 0;
}
