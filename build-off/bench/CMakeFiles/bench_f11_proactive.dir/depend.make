# Empty dependencies file for bench_f11_proactive.
# This may be replaced when dependencies are built.
