# Empty compiler generated dependencies file for symmetric_pair.
# This may be replaced when dependencies are built.
