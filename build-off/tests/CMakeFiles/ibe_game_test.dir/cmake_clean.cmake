file(REMOVE_RECURSE
  "CMakeFiles/ibe_game_test.dir/ibe_game_test.cpp.o"
  "CMakeFiles/ibe_game_test.dir/ibe_game_test.cpp.o.d"
  "ibe_game_test"
  "ibe_game_test.pdb"
  "ibe_game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibe_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
