// Baseline schemes for the comparison experiments (T1, footnote 3 of the
// paper; see DESIGN.md Section 5 for the substitution rationale).
//
//  * ElGamalGT       -- vanilla ElGamal in GT; the no-leakage-protection
//                       reference point for cost.
//  * Bhho            -- the BHHO/Naor-Segev-style leakage-resilient PKE over
//                       G: pk = (g_1..g_w, h = prod g_i^{x_i}), sk = x.
//                       Bounded-leakage resilient (leftover hash lemma), no
//                       refresh: the scheme the paper's Pi_ss is inspired by.
//  * BitwiseBhho     -- encrypts k-bit strings bit-by-bit with Bhho. This is
//                       the *cost model* for BKKV [11]: omega(n)
//                       exponentiations and omega(n) group elements per
//                       plaintext, versus DLR's 2 exps / 2 elements for a
//                       whole group element.
#pragma once

#include "group/bilinear.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
class ElGamalGT {
 public:
  using Scalar = typename GG::Scalar;
  using GT = typename GG::GT;

  struct PublicKey {
    GT g{};
    GT h{};  // g^x
  };
  struct SecretKey {
    Scalar x{};
  };
  struct Ciphertext {
    GT c1{};
    GT c2{};
  };

  explicit ElGamalGT(GG gg) : gg_(std::move(gg)) {}

  std::pair<PublicKey, SecretKey> gen(crypto::Rng& rng) const {
    const Scalar x = gg_.sc_random(rng);
    const GT g = gg_.gt_gen();
    return {PublicKey{g, gg_.gt_pow(g, x)}, SecretKey{x}};
  }

  Ciphertext enc(const PublicKey& pk, const GT& m, crypto::Rng& rng) const {
    const Scalar t = gg_.sc_random(rng);
    return {gg_.gt_pow(pk.g, t), gg_.gt_mul(m, gg_.gt_pow(pk.h, t))};
  }

  [[nodiscard]] GT dec(const SecretKey& sk, const Ciphertext& ct) const {
    return gg_.gt_mul(ct.c2, gg_.gt_inv(gg_.gt_pow(ct.c1, sk.x)));
  }

  [[nodiscard]] std::size_t ciphertext_bytes() const { return 2 * gg_.gt_bytes(); }

 private:
  GG gg_;
};

template <group::BilinearGroup GG>
class Bhho {
 public:
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;

  struct PublicKey {
    std::vector<G> g;  // g_1..g_w
    G h{};             // prod g_i^{x_i}
  };
  struct SecretKey {
    std::vector<Scalar> x;
  };
  struct Ciphertext {
    std::vector<G> c;  // g_i^t
    G c0{};            // m * h^t
  };

  Bhho(GG gg, std::size_t width) : gg_(std::move(gg)), width_(width) {
    if (width_ == 0) throw std::invalid_argument("Bhho: width must be positive");
  }

  [[nodiscard]] std::size_t width() const { return width_; }

  std::pair<PublicKey, SecretKey> gen(crypto::Rng& rng) const {
    PublicKey pk;
    SecretKey sk;
    pk.g.reserve(width_);
    sk.x.reserve(width_);
    pk.h = gg_.g_id();
    for (std::size_t i = 0; i < width_; ++i) {
      pk.g.push_back(gg_.g_random(rng));
      sk.x.push_back(gg_.sc_random(rng));
      pk.h = gg_.g_mul(pk.h, gg_.g_pow(pk.g[i], sk.x[i]));
    }
    return {std::move(pk), std::move(sk)};
  }

  Ciphertext enc(const PublicKey& pk, const G& m, crypto::Rng& rng) const {
    const Scalar t = gg_.sc_random(rng);
    Ciphertext ct;
    ct.c.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) ct.c.push_back(gg_.g_pow(pk.g[i], t));
    ct.c0 = gg_.g_mul(m, gg_.g_pow(pk.h, t));
    return ct;
  }

  [[nodiscard]] G dec(const SecretKey& sk, const Ciphertext& ct) const {
    if (ct.c.size() != width_ || sk.x.size() != width_)
      throw std::invalid_argument("Bhho::dec: wrong width");
    G mask = gg_.g_id();
    for (std::size_t i = 0; i < width_; ++i)
      mask = gg_.g_mul(mask, gg_.g_pow(ct.c[i], sk.x[i]));
    return gg_.g_mul(ct.c0, gg_.g_inv(mask));
  }

  [[nodiscard]] std::size_t ciphertext_bytes() const { return (width_ + 1) * gg_.g_bytes(); }

 private:
  GG gg_;
  std::size_t width_;
};

/// Bit-by-bit encryption over Bhho: bit b is encoded as g^b. The decryptor
/// distinguishes identity from g. Cost profile matches the single-processor
/// continual-leakage PKEs that encrypt single bits ([11] and, structurally,
/// [29]).
template <group::BilinearGroup GG>
class BitwiseBhho {
 public:
  using Base = Bhho<GG>;
  using PublicKey = typename Base::PublicKey;
  using SecretKey = typename Base::SecretKey;
  using Ciphertext = std::vector<typename Base::Ciphertext>;

  BitwiseBhho(GG gg, std::size_t width) : gg_(std::move(gg)), base_(gg_, width) {}

  std::pair<PublicKey, SecretKey> gen(crypto::Rng& rng) const { return base_.gen(rng); }

  Ciphertext enc(const PublicKey& pk, const Bytes& msg, crypto::Rng& rng) const {
    Ciphertext out;
    out.reserve(8 * msg.size());
    for (std::size_t i = 0; i < 8 * msg.size(); ++i) {
      const bool bit = (msg[i / 8] >> (i % 8)) & 1;
      out.push_back(base_.enc(pk, bit ? gg_.g_gen() : gg_.g_id(), rng));
    }
    return out;
  }

  [[nodiscard]] Bytes dec(const SecretKey& sk, const Ciphertext& ct) const {
    if (ct.size() % 8 != 0) throw std::invalid_argument("BitwiseBhho::dec: partial byte");
    Bytes out(ct.size() / 8, 0);
    for (std::size_t i = 0; i < ct.size(); ++i) {
      const auto m = base_.dec(sk, ct[i]);
      if (gg_.g_eq(m, gg_.g_gen()))
        out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      else if (!gg_.g_is_id(m))
        throw std::invalid_argument("BitwiseBhho::dec: invalid bit encoding");
    }
    return out;
  }

  [[nodiscard]] std::size_t ciphertext_bytes(std::size_t msg_bytes) const {
    return 8 * msg_bytes * base_.ciphertext_bytes();
  }

 private:
  GG gg_;
  Base base_;
};

}  // namespace dlr::schemes
