// KsServer<GG> -- one shard of the multi-tenant keystore service.
//
// Thread architecture is P2Server's, verbatim: with pipeline=true (default)
// decryption requests (ks.dec AND the compat svc.dec route) flow through the
// SAME decode -> BatchCollector -> crypto-worker -> coalesced-encode
// pipeline as P2Server -- readers decode and address-check, crypto workers
// pull micro-batches, group them by (tenant, key), and serve each group
// through one KeyStore::DecSession (one shared entry lock + one share-vector
// recode per key per batch). Control-plane routes (ks.ref / commit / hello /
// put / map) stay on a small WorkerPool. With pipeline=false every request
// runs on the WorkerPool as in PR 7. One background compaction thread
// periodically folds the segmented journal. What changes is the dispatch: every ks.* request
// names a (tenant, key) and is served by the KeyStore's per-key epoch
// machine, and the legacy single-key routes (svc.dec / svc.ref /
// svc.ref.commit / svc.hello) are kept alive by mapping them onto
// default_key_id() -- a PR 2-5 DecryptionClient pointed at a KsServer whose
// store holds the default key behaves exactly as against a P2Server, which
// is how "single-key mode is a 1-key store".
//
// Sharding: the server carries a shard id and a versioned ShardMap (empty =
// accept everything, the bootstrap/single-shard mode). A ks.* request for a
// key the map assigns elsewhere is refused with the retryable WrongShard
// error; the client refetches the map over ks.map and re-routes. The map is
// installed by the operator/bench via set_shard_map() and served to clients
// over ks.map -- every shard serves the whole map, so any one bootstrap
// address suffices.
//
// LIVE RESHARDING (DESIGN.md §14): ks.map.propose installs a new map on a
// shard and enqueues every resident key the new map assigns elsewhere onto a
// background migration driver, which hands each key to its destination over
// ks.migrate.offer (ship state, destination journals as Staged and acks the
// digest) -> release (source durably stops serving; the entry's exclusive
// lock drains in-flight decrypts) -> ks.migrate.commit (destination starts
// serving) -> tombstone. Admission is STORE-FIRST: a resident serving key
// answers no matter what the map says (the map is installed at propose time,
// before keys have moved), a Staged/Released copy answers Draining/WrongShard,
// and an absent key the map assigns here answers Draining while the reshard
// window is open -- the window is the set of peer shards that have not yet
// broadcast ks.migrate.done, so "not arrived yet" is distinguishable from
// "does not exist". The operator must propose the SAME map (same version) to
// every shard of old ∪ new; after a crash-restart, re-proposing with a
// bumped version resumes journaled half-done migrations and re-closes
// windows. The whole surface is gated on hello-v2 (ks.map.propose names the
// minimum wire version, PR 9).
//
// The REFRESH SCHEDULER deliberately does not live here: refresh is a
// two-party protocol and the P1 half lives in the client fleet (KsFleet),
// which therefore owns the budget-driven scheduler. This server's side of
// the policy is accounting (charging budgets, piggybacking spent/budget on
// every ks.dec.ok) and the per-key 2PC state machine.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "crypto/rng.hpp"
#include "keystore/keystore.hpp"
#include "keystore/ks_protocol.hpp"
#include "keystore/shard_map.hpp"
#include "service/admin.hpp"
#include "service/batcher.hpp"
#include "service/overload.hpp"
#include "service/parallel.hpp"
#include "service/protocol.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/events.hpp"
#include "telemetry/trace.hpp"
#include "transport/endpoint.hpp"
#include "transport/mux.hpp"

namespace dlr::keystore {

template <group::BilinearGroup GG>
class KsServer {
 public:
  using Core = schemes::DlrCore<GG>;
  using Store = KeyStore<GG>;
  using ServiceErrc = service::ServiceErrc;
  using ServiceError = service::ServiceError;

  struct Options {
    int workers = 4;
    std::size_t queue_cap = 1024;
    transport::TransportOptions transport{};
    /// Grace period stop() allows queued work to finish before hanging up.
    transport::Millis stop_drain{1000};
    /// This process's shard id (matched against the installed ShardMap).
    std::uint32_t shard_id = 0;
    typename Store::Options store{};
    /// Background journal-compaction cadence (0 = no compaction thread).
    std::chrono::milliseconds compact_interval{500};
    /// Wraps each accepted connection (fault injection in tests/benches).
    std::function<std::shared_ptr<transport::Conn>(std::shared_ptr<transport::FramedConn>)>
        conn_wrapper;
    /// Run a read-only AdminServer sidecar (DESIGN.md §10).
    bool admin = false;
    std::uint16_t admin_port = 0;
    /// Pipelined decryption path (DESIGN.md §12): readers decode, crypto
    /// workers pull cross-request micro-batches grouped by key. Off = every
    /// request runs whole on the WorkerPool (PR 7 behavior).
    bool pipeline = true;
    /// Micro-batch bounds (effective cap is min(max_batch, 2 * workers)).
    std::size_t max_batch = 16;
    std::chrono::microseconds batch_wait{200};
    /// Derive a DLR_PARALLEL default from hardware_concurrency minus this
    /// server's own threads when the env var is absent.
    bool adaptive_parallel = true;
    /// Queue-depth fraction past which the server is "degraded" and sheds
    /// background refresh PREPAREs (DESIGN.md §13).
    double overload_high_water = 0.75;
    /// Ceiling on the server-computed retry-after hint.
    std::uint32_t retry_after_cap_ms = 2000;
    /// Leakage-floor exception to refresh shedding: a key whose spent
    /// fraction is at/above this floor gets its refresh served even while
    /// degraded -- availability degrades before leakage tolerance does.
    double refresh_shed_floor = 0.8;
    /// Artificial per-batch crypto-stage delay (tests and the --overload
    /// bench): presents a controllable capacity so saturation is
    /// deterministic instead of a race against real crypto speed.
    std::chrono::microseconds inject_crypto_delay{0};
  };

  KsServer(GG gg, schemes::DlrParams prm, crypto::Rng rng, Options opt)
      : opt_(std::move(opt)),
        store_(std::move(gg), prm, std::move(rng), opt_.store),
        batcher_(typename service::BatchCollector<KsDecJob>::Options{
            effective_batch_cap(opt_), opt_.batch_wait, opt_.queue_cap}),
        gov_(service::OverloadGovernor::Options{.workers = opt_.workers,
                                                .queue_cap = opt_.queue_cap,
                                                .high_water = opt_.overload_high_water,
                                                .hint_cap_ms = opt_.retry_after_cap_ms}) {}

  ~KsServer() { stop(); }
  KsServer(const KsServer&) = delete;
  KsServer& operator=(const KsServer&) = delete;

  void start(std::uint16_t port = 0) {
    listener_ = transport::Listener::loopback(port);
    pool_ = std::make_unique<service::WorkerPool>(
        opt_.pipeline ? kControlWorkers : opt_.workers, opt_.queue_cap);
    if (opt_.adaptive_parallel) {
      const unsigned hw = std::thread::hardware_concurrency();
      const int own = (opt_.pipeline ? opt_.workers + kControlWorkers : opt_.workers) + 1;
      service::set_adaptive_parallel_default(
          hw == 0 ? 0 : std::max(0, static_cast<int>(hw) - own));
    }
    if (opt_.pipeline) {
      crypto_threads_.reserve(static_cast<std::size_t>(opt_.workers));
      for (int i = 0; i < opt_.workers; ++i)
        crypto_threads_.emplace_back([this] { crypto_loop(); });
    }
    if (opt_.admin) {
      admin_ = std::make_unique<service::AdminServer>(
          service::AdminServer::Options{.transport = opt_.transport});
      admin_->register_health("keystore", [this] { return health_fields(); });
      admin_->start(opt_.admin_port);
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    if (opt_.compact_interval.count() > 0)
      compact_thread_ = std::thread([this] { compact_loop(); });
    mig_thread_ = std::thread([this] { migrate_loop(); });
    // Journaled mid-migration keys (crash restart) go straight back on the
    // driver; Released ones finish commit-only even before any map arrives.
    resume_migrations();
  }

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  [[nodiscard]] service::AdminServer* admin() { return admin_.get(); }
  [[nodiscard]] Store& store() { return store_; }
  [[nodiscard]] std::uint32_t shard_id() const { return opt_.shard_id; }
  /// Overload governor (shed counters, EWMA crypto cost) — read-only.
  [[nodiscard]] const service::OverloadGovernor& gov() const { return gov_; }

  void set_shard_map(ShardMap map) {
    {
      std::lock_guard lk(map_mu_);
      map_ = std::move(map);
    }
    resume_migrations();
  }
  [[nodiscard]] ShardMap shard_map() const {
    std::lock_guard lk(map_mu_);
    return map_;
  }

  /// Install a proposed map and enqueue every resident key it assigns
  /// elsewhere for migration (the local half of ks.map.propose; the operator
  /// calls this -- or sends the route -- on EVERY shard of old ∪ new).
  /// Returns the number of outgoing keys. The reshard window opens here:
  /// absent-but-owned keys answer Draining until every peer broadcasts done.
  std::size_t propose_map(ShardMap proposed) {
    if (proposed.empty())
      throw ServiceError(ServiceErrc::BadRequest, 0, "proposed shard map is empty");
    {
      std::lock_guard lk(map_mu_);
      if (!map_.empty() && proposed.version() < map_.version())
        throw ServiceError(ServiceErrc::BadRequest, 0,
                           "proposed map version " + std::to_string(proposed.version()) +
                               " older than installed " + std::to_string(map_.version()));
      mig_window_version_ = proposed.version();
      mig_await_done_.clear();
      for (const auto& s : map_.shards())
        if (s.id != opt_.shard_id) mig_await_done_.insert(s.id);
      for (const auto& s : proposed.shards())
        if (s.id != opt_.shard_id) mig_await_done_.insert(s.id);
      // A racing peer may have finished + broadcast before our propose
      // landed; its recorded done must still count against this window.
      for (auto it = mig_await_done_.begin(); it != mig_await_done_.end();)
        if (auto seen = mig_done_seen_.find(*it);
            seen != mig_done_seen_.end() && seen->second >= mig_window_version_)
          it = mig_await_done_.erase(it);
        else
          ++it;
      map_ = std::move(proposed);
    }
    const ShardMap snap = shard_map();
    std::size_t outgoing = 0;
    {
      std::lock_guard lk(mig_mu_);
      for (const auto& id : store_.key_ids()) {
        if (id == default_key_id()) continue;  // compat key never migrates
        const auto rs = store_.route_state(id);
        const bool out = rs == Store::RouteState::Released ||
                         (rs == Store::RouteState::Serving &&
                          snap.owner(id) != opt_.shard_id);
        if (out && mig_queued_.insert(id).second) {
          mig_queue_.push_back(id);
          ++outgoing;
        }
      }
      for (const auto& s : snap.shards())
        if (s.id != opt_.shard_id) {
          auto& owed = mig_done_targets_[s.id];
          owed = std::max(owed, snap.version());
        }
      mig_broadcast_pending_ = true;
    }
    telemetry::Registry::global()
        .gauge("ks.migrate.backlog")
        .set(static_cast<double>(mig_backlog()));
    mig_cv_.notify_all();
    return outgoing;
  }

  /// Migration keys still queued or mid-flight on the driver.
  [[nodiscard]] std::size_t mig_backlog() const {
    std::lock_guard lk(mig_mu_);
    return mig_queued_.size();
  }
  /// No queued hand-offs and no done-broadcast owed -- this shard's half of
  /// the reshard is complete (tests/benches poll this).
  [[nodiscard]] bool mig_idle() const {
    std::lock_guard lk(mig_mu_);
    return mig_queued_.empty() && !mig_broadcast_pending_;
  }
  [[nodiscard]] bool mig_halted() const { return mig_halted_.load(); }
  /// Peers whose ks.migrate.done this shard is still waiting for.
  [[nodiscard]] bool reshard_window_open() const {
    std::lock_guard lk(map_mu_);
    return !mig_await_done_.empty();
  }
  [[nodiscard]] std::uint64_t migrated_out() const { return mig_out_total_.load(); }
  [[nodiscard]] std::uint64_t migrated_in() const { return mig_in_total_.load(); }

  void begin_drain() { draining_stop_.store(true); }

  void stop() {
    if (stopping_.exchange(true)) {
      if (accept_thread_.joinable()) accept_thread_.join();
      if (compact_thread_.joinable()) compact_thread_.join();
      if (mig_thread_.joinable()) mig_thread_.join();
      return;
    }
    draining_stop_.store(true);
    {
      std::lock_guard lk(compact_mu_);
      compact_stop_ = true;
    }
    compact_cv_.notify_all();
    if (compact_thread_.joinable()) compact_thread_.join();
    {
      std::lock_guard lk(mig_mu_);
      mig_stop_ = true;
    }
    mig_cv_.notify_all();
    if (mig_thread_.joinable()) mig_thread_.join();
    {
      std::lock_guard lk(peer_mu_);
      for (auto& [shard, m] : peer_muxes_)
        if (m) m->stop();
      peer_muxes_.clear();
    }
    const auto deadline = std::chrono::steady_clock::now() + opt_.stop_drain;
    while (std::chrono::steady_clock::now() < deadline && pool_ &&
           (pool_->queued() > 0 || batcher_.queued() > 0))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::shared_ptr<ConnState>> conns;
    {
      std::lock_guard lock(conns_mu_);
      conns = conns_;
    }
    for (auto& c : conns) c->conn->shutdown();
    if (pool_) pool_->stop();
    // Wake readers blocked in submit() backpressure before joining them;
    // crypto workers drain the queue and exit on the first empty collect().
    batcher_.stop();
    for (auto& t : crypto_threads_)
      if (t.joinable()) t.join();
    crypto_threads_.clear();
    for (auto& c : conns)
      if (c->reader.joinable()) c->reader.join();
    if (admin_) admin_->stop();
  }

 private:
  static constexpr int kControlWorkers = 2;

  struct ConnState {
    std::shared_ptr<transport::Conn> conn;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  /// One decoded, shard-checked decryption request parked in the batcher.
  struct KsDecJob {
    std::shared_ptr<transport::Conn> conn;
    std::uint32_t session = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    KeyId id;
    std::uint64_t epoch = 0;
    Bytes payload;
    bool compat = false;  // arrived on the svc.dec route -> svc.dec.ok reply
    std::chrono::steady_clock::time_point enq;
    /// Absolute expiry from the request's deadline budget; epoch value = none.
    std::chrono::steady_clock::time_point deadline{};
  };

  [[nodiscard]] static std::size_t effective_batch_cap(const Options& o) {
    const std::size_t w = static_cast<std::size_t>(std::max(1, o.workers));
    return std::max<std::size_t>(1, std::min(o.max_batch, 2 * w));
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> health_fields() const {
    std::uint64_t map_version = 0;
    std::size_t map_shards = 0;
    {
      std::lock_guard lk(map_mu_);
      map_version = map_.version();
      map_shards = map_.shards().size();
    }
    auto* j = const_cast<Store&>(store_).journal();
    return {
        {"shard_id", std::to_string(opt_.shard_id)},
        {"keys", std::to_string(store_.size())},
        {"map_version", std::to_string(map_version)},
        {"map_shards", std::to_string(map_shards)},
        {"journal_segments", j ? std::to_string(j->segment_count()) : "0"},
        {"compactions", j ? std::to_string(j->compactions()) : "0"},
        {"draining", draining_stop_.load() ? "true" : "false"},
        {"pipeline", opt_.pipeline ? "true" : "false"},
        {"batch_queue", std::to_string(batcher_.queued())},
        {"queue_cap", std::to_string(opt_.queue_cap)},
        {"degraded",
         gov_.degraded(batcher_.queued() + (pool_ ? pool_->queued() : 0)) ? "true"
                                                                          : "false"},
        {"shed_overload", std::to_string(gov_.shed_overload())},
        {"shed_deadline", std::to_string(gov_.shed_deadline())},
        {"shed_refresh", std::to_string(gov_.shed_refresh())},
        {"crypto_cost_us_ewma", std::to_string(gov_.cost_us())},
        {"migrate_backlog", std::to_string(mig_backlog())},
        {"migrate_halted", mig_halted_.load() ? "true" : "false"},
        {"reshard_window", reshard_window_open() ? "open" : "closed"},
        {"migrated_out", std::to_string(mig_out_total_.load())},
        {"migrated_in", std::to_string(mig_in_total_.load())},
    };
  }

  void accept_loop() {
    for (;;) {
      transport::Socket sock;
      try {
        sock = listener_.accept(transport::Millis{200});
      } catch (const transport::TransportError& e) {
        if (e.code() == transport::Errc::Timeout) {
          if (stopping_.load()) return;
          continue;
        }
        return;  // listener closed
      }
      auto st = std::make_shared<ConnState>();
      auto fc = std::make_shared<transport::FramedConn>(std::move(sock), opt_.transport);
      st->conn = opt_.conn_wrapper
                     ? opt_.conn_wrapper(std::move(fc))
                     : std::static_pointer_cast<transport::Conn>(std::move(fc));
      st->reader = std::thread([this, conn = st->conn] { reader_loop(conn); });
      std::lock_guard lock(conns_mu_);
      std::erase_if(conns_, [](const std::shared_ptr<ConnState>& c) {
        if (!c->done.load()) return false;
        if (c->reader.joinable()) c->reader.join();
        return true;
      });
      conns_.push_back(std::move(st));
    }
  }

  void reader_loop(const std::shared_ptr<transport::Conn>& conn) {
    for (;;) {
      transport::Frame f;
      try {
        f = conn->recv_blocking();
      } catch (const transport::TransportError&) {
        break;
      }
      if (f.type != transport::FrameType::Data) continue;
      if (opt_.pipeline && (f.label == kKsDec || f.label == service::kLabelDecReq)) {
        if (!enqueue_dec(conn, std::move(f))) break;
        continue;
      }
      // Stash the header before the body moves into the job: a Full verdict
      // must still answer on the request's session with its trace intact.
      transport::Frame hdr{f.session, f.type,
                           static_cast<std::uint8_t>(net::DeviceId::P2), f.label, {}};
      hdr.trace_id = f.trace_id;
      hdr.parent_span = f.parent_span;
      const auto sub = pool_->try_submit([this, conn, f = std::move(f)]() mutable {
        handle(*conn, std::move(f));
      });
      if (sub == service::WorkerPool::Submit::Stopped) break;
      if (sub == service::WorkerPool::Submit::Full) {
        // Reader never blocks on a saturated pool (DESIGN.md §13): shed with
        // a retryable Overloaded + drain-time hint instead of stalling every
        // request behind this one on the connection.
        const std::size_t depth = pool_->queued() + batcher_.queued();
        gov_.count_shed_overload();
        shed_event("cause=pool-full label=" + hdr.label, gov_.shed_overload());
        try {
          send_err(*conn, hdr, ServiceErrc::Overloaded, 0, "worker queue full",
                   gov_.retry_after_ms(depth));
        } catch (const transport::TransportError&) {
          break;
        }
      }
    }
    std::lock_guard lock(conns_mu_);
    for (auto& c : conns_)
      if (c->conn == conn) c->done.store(true);
  }

  void compact_loop() {
    std::unique_lock lk(compact_mu_);
    while (!compact_stop_) {
      compact_cv_.wait_for(lk, opt_.compact_interval, [this] { return compact_stop_; });
      if (compact_stop_) return;
      lk.unlock();
      try {
        store_.maybe_compact();
      } catch (const std::exception&) {
        // An I/O failure mid-compaction leaves a recoverable on-disk state
        // (segment_journal.hpp); keep serving and retry next tick.
      }
      lk.lock();
    }
  }

  /// Admission gate, STORE-FIRST since live resharding: a resident serving
  /// key answers regardless of the map (the new map is installed at propose
  /// time, before the key has moved), a mid-migration copy answers its
  /// route-state verdict, and only then does the map speak -- WrongShard if
  /// it names another shard, Draining if it names us but the key has not
  /// arrived and the reshard window is still open. The default key is exempt
  /// -- the single-key compat routes must keep working while a map is
  /// installed.
  void check_owned(const KeyId& id) const {
    if (id == default_key_id()) return;
    switch (store_.route_state(id)) {
      case Store::RouteState::Serving:
        return;
      case Store::RouteState::Staged:
        throw ServiceError(ServiceErrc::Draining, 0,
                           id.display() + " is migrating to this shard");
      case Store::RouteState::Released:
      case Store::RouteState::Absent:
        break;  // the map decides
    }
    std::lock_guard lk(map_mu_);
    if (map_.empty()) return;
    const std::uint32_t owner = map_.owner(id);
    if (owner != opt_.shard_id)
      throw ServiceError(ServiceErrc::WrongShard, 0,
                         id.display() + " belongs to shard " + std::to_string(owner));
    if (!mig_await_done_.empty())
      throw ServiceError(ServiceErrc::Draining, 0,
                         id.display() + " awaiting migration hand-off");
    // Owned, window closed, not resident: fall through to the store's
    // definitive UnknownKey.
  }

  // ---- pipelined decryption path ----------------------------------------

  /// Reader-side stage: decode + shard-check + park in the batcher. Returns
  /// false when the reader should exit (connection dead or server stopping).
  bool enqueue_dec(const std::shared_ptr<transport::Conn>& conn, transport::Frame f) {
    try {
      if (draining_stop_.load()) {
        send_err(*conn, f, ServiceErrc::Shutdown, 0, "server shutting down");
        return true;
      }
      KsDecJob job;
      std::uint32_t deadline_ms = 0;
      job.compat = (f.label == service::kLabelDecReq);
      if (job.compat) {
        service::Request req = decode_svc(f);
        job.id = default_key_id();
        job.epoch = req.epoch;
        job.payload = std::move(req.round1);
        deadline_ms = req.deadline_ms;
      } else {
        KsRequest req = decode_ks(f);
        check_owned(req.id);
        job.id = std::move(req.id);
        job.epoch = req.epoch;
        job.payload = std::move(req.payload);
        deadline_ms = req.deadline_ms;
      }
      job.conn = conn;
      job.session = f.session;
      job.trace_id = f.trace_id;
      job.parent_span = f.parent_span;
      job.enq = std::chrono::steady_clock::now();
      if (deadline_ms != 0)
        job.deadline = job.enq + std::chrono::milliseconds(deadline_ms);
      switch (batcher_.try_submit(job)) {
        case service::BatchCollector<KsDecJob>::Submit::Ok:
          return true;
        case service::BatchCollector<KsDecJob>::Submit::Stopped:
          try {
            send_err(*conn, f, ServiceErrc::Shutdown, 0, "server shutting down");
          } catch (...) {
          }
          return false;
        case service::BatchCollector<KsDecJob>::Submit::Full: {
          // Reader never blocks on a saturated batch queue (DESIGN.md §13):
          // shed BEFORE any crypto was spent, with the estimated backlog
          // drain time as the retry floor.
          const std::size_t depth = batcher_.queued();
          gov_.count_shed_overload();
          shed_event("cause=batch-full depth=" + std::to_string(depth),
                     gov_.shed_overload());
          send_err(*conn, f, ServiceErrc::Overloaded, 0, "decrypt queue full",
                   gov_.retry_after_ms(depth));
          return true;
        }
      }
      return true;
    } catch (const ServiceError& e) {
      try {
        send_err(*conn, f, e.code(), e.server_epoch(), e.what());
      } catch (...) {
      }
      return true;
    } catch (const transport::TransportError&) {
      return false;
    } catch (const std::exception& e) {
      try {
        send_err(*conn, f, ServiceErrc::Internal, 0, e.what());
      } catch (...) {
      }
      return true;
    }
  }

  void crypto_loop() {
    for (;;) {
      auto batch = batcher_.collect();
      if (batch.empty()) return;  // stopped and drained
      process_batch(batch);
    }
  }

  /// Crypto + encode stages for one micro-batch: group by key, serve each
  /// group through one DecSession (one shared entry lock + one recode),
  /// then demultiplex the replies per connection with coalesced sends.
  void process_batch(std::vector<KsDecJob>& batch) {
    batch_size_hist().observe(static_cast<double>(batch.size()));
    const auto now = std::chrono::steady_clock::now();
    for (const auto& j : batch)
      batch_wait_hist().observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - j.enq).count()));

    struct Out {
      Bytes body;
      const char* label = nullptr;  // reply label; nullptr -> error frame
      ServiceErrc errc = ServiceErrc::BadRequest;
      std::uint64_t err_epoch = 0;
      std::string err;
      std::uint64_t stamp_trace = 0;
      std::uint64_t stamp_span = 0;
    };
    std::vector<Out> outs(batch.size());

    // Group batch indices by key, preserving arrival order within a group.
    // A job whose deadline budget expired while queued is dropped HERE,
    // before any pairing/exponentiation is spent on an answer the client
    // already gave up on (DESIGN.md §13).
    std::size_t ran = 0;
    std::vector<std::pair<const KeyId*, std::vector<std::size_t>>> groups;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline != std::chrono::steady_clock::time_point{} &&
          now >= batch[i].deadline) {
        gov_.count_shed_deadline();
        outs[i].errc = ServiceErrc::DeadlineExceeded;
        outs[i].err = "deadline expired in queue";
        continue;
      }
      ++ran;
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return *g.first == batch[i].id; });
      if (it == groups.end()) {
        groups.push_back({&batch[i].id, {i}});
      } else {
        it->second.push_back(i);
      }
    }

    // The batch already spreads over the crypto workers; with more than one
    // request in hand, per-request fan-out would just oversubscribe.
    const auto crypto_t0 = std::chrono::steady_clock::now();
    service::FanoutSuppressGuard fanout_guard(batch.size() > 1);
    for (auto& [id, idxs] : groups) {
      try {
        auto session = store_.dec_session(*id);
        for (const std::size_t i : idxs) {
          auto& j = batch[i];
          telemetry::ScopedSpan span(j.compat ? "svc.dec" : "ks.dec",
                                     telemetry::TraceContext{j.trace_id, j.parent_span});
          try {
            auto out = session.run(j.epoch, j.payload);
            if (j.compat) {
              outs[i].body = std::move(out.reply);
              outs[i].label = service::kLabelDecOk;
            } else {
              outs[i].body = encode_ks_dec_ok(
                  {std::move(out.reply), out.spent_millibits, out.budget_millibits});
              outs[i].label = kKsDecOk;
            }
          } catch (const ServiceError& e) {
            outs[i].errc = e.code();
            outs[i].err_epoch = e.server_epoch();
            outs[i].err = e.what();
          } catch (const std::exception& e) {
            outs[i].errc = ServiceErrc::Internal;
            outs[i].err = e.what();
          }
          const auto ctx = telemetry::Tracer::global().current();
          if (ctx.active()) {
            outs[i].stamp_trace = ctx.trace_id;
            outs[i].stamp_span = ctx.span_id;
          }
        }
      } catch (const ServiceError& e) {
        for (const std::size_t i : idxs) {
          outs[i].errc = e.code();
          outs[i].err_epoch = e.server_epoch();
          outs[i].err = e.what();
        }
      } catch (const std::exception& e) {
        for (const std::size_t i : idxs) {
          outs[i].errc = ServiceErrc::Internal;
          outs[i].err = e.what();
        }
      }
    }
    if (ran > 0 && opt_.inject_crypto_delay.count() > 0)
      std::this_thread::sleep_for(opt_.inject_crypto_delay);
    if (ran > 0)
      gov_.record_batch(ran, std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - crypto_t0)
                                 .count());

    // Demultiplex: one frame list per connection, sent with one syscall.
    const auto encode_now = std::chrono::steady_clock::now();
    std::vector<std::pair<transport::Conn*, std::vector<transport::Frame>>> by_conn;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& j = batch[i];
      auto& o = outs[i];
      // Second deadline check: the crypto is sunk cost, but a reply the
      // client has stopped waiting for still costs encode + send + client
      // demux confusion -- convert it to the typed error instead.
      if (o.label != nullptr && j.deadline != std::chrono::steady_clock::time_point{} &&
          encode_now >= j.deadline) {
        gov_.count_shed_deadline();
        o.label = nullptr;
        o.errc = ServiceErrc::DeadlineExceeded;
        o.err_epoch = 0;
        o.err = "deadline expired before encode";
      }
      transport::Frame out;
      if (o.label != nullptr) {
        out = transport::Frame{j.session, transport::FrameType::Data,
                               static_cast<std::uint8_t>(net::DeviceId::P2), o.label,
                               std::move(o.body)};
      } else {
        out = transport::Frame{j.session, transport::FrameType::Error,
                               static_cast<std::uint8_t>(net::DeviceId::P2),
                               service::kLabelErr,
                               service::encode_error(o.errc, o.err_epoch, o.err)};
      }
      if (j.trace_id != 0) {
        out.trace_id = o.stamp_trace != 0 ? o.stamp_trace : j.trace_id;
        out.parent_span = o.stamp_trace != 0 ? o.stamp_span : j.parent_span;
      }
      auto it = std::find_if(by_conn.begin(), by_conn.end(),
                             [&](const auto& g) { return g.first == j.conn.get(); });
      if (it == by_conn.end()) {
        by_conn.push_back({j.conn.get(), {}});
        it = std::prev(by_conn.end());
      }
      it->second.push_back(std::move(out));
    }
    for (auto& [conn, frames] : by_conn) {
      try {
        conn->send_many(frames);
      } catch (const transport::TransportError&) {
        // That client is gone; the other connections' replies still went out.
      }
    }
  }

  static telemetry::Histogram& batch_size_hist() {
    static telemetry::Histogram& h = telemetry::Registry::global().histogram(
        "svc.batch.size", {1, 2, 4, 8, 16, 32, 64});
    return h;
  }
  static telemetry::Histogram& batch_wait_hist() {
    static telemetry::Histogram& h = telemetry::Registry::global().histogram(
        "svc.batch.wait_us", {25, 50, 100, 200, 400, 800, 1600, 5000});
    return h;
  }

  void handle(transport::Conn& conn, transport::Frame f) {
    try {
      if (draining_stop_.load()) {
        send_err(conn, f, ServiceErrc::Shutdown, 0, "server shutting down");
        return;
      }
      if (f.label == kKsDec) {
        handle_dec(conn, f);
      } else if (f.label == kKsRef) {
        handle_ref(conn, f);
      } else if (f.label == kKsRefCommit) {
        handle_ref_commit(conn, f);
      } else if (f.label == kKsHello) {
        handle_hello(conn, f);
      } else if (f.label == kKsPut) {
        handle_put(conn, f);
      } else if (f.label == kKsMap) {
        // Encode under map_mu_ but send outside it: a connection blocked in
        // send() must not stall check_owned()/set_shard_map() on other workers.
        Bytes body;
        {
          std::lock_guard lk(map_mu_);
          body = map_.encode();
        }
        reply_data(conn, f, kKsMapOk, std::move(body));
      } else if (f.label == kKsMapPropose) {
        handle_map_propose(conn, f);
      } else if (f.label == kKsMigOffer) {
        handle_mig_offer(conn, f);
      } else if (f.label == kKsMigCommit) {
        handle_mig_commit(conn, f);
      } else if (f.label == kKsMigDone) {
        handle_mig_done(conn, f);
      } else if (f.label == service::kLabelDecReq) {
        handle_compat_dec(conn, f);
      } else if (f.label == service::kLabelRefReq) {
        handle_compat_ref(conn, f);
      } else if (f.label == service::kLabelRefCommit) {
        handle_compat_commit(conn, f);
      } else if (f.label == service::kLabelHello) {
        handle_compat_hello(conn, f);
      } else {
        send_err(conn, f, ServiceErrc::BadRequest, 0, "unknown label '" + f.label + "'");
      }
    } catch (const MigrationHalt& e) {
      // Test-injected "crash after durable step": park every migration
      // surface (driver + routes) until the process is restarted.
      mig_halted_.store(true);
      try {
        send_err(conn, f, ServiceErrc::Internal, 0, e.what());
      } catch (...) {
      }
    } catch (const ServiceError& e) {
      try {
        send_err(conn, f, e.code(), e.server_epoch(), e.what());
      } catch (...) {
      }
    } catch (const transport::TransportError&) {
      // Response could not be delivered (client gone).
    } catch (const std::exception& e) {
      try {
        send_err(conn, f, ServiceErrc::Internal, 0, e.what());
      } catch (...) {
      }
    }
  }

  void handle_dec(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("ks.dec",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    KsRequest req = decode_ks(f);
    check_owned(req.id);
    const auto out = store_.dec(req.id, req.epoch, req.payload);
    reply_data(conn, f, kKsDecOk,
               encode_ks_dec_ok({out.reply, out.spent_millibits, out.budget_millibits}));
  }

  void handle_ref(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("ks.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    KsRequest req = decode_ks(f);
    check_owned(req.id);
    if (maybe_shed_refresh(conn, f, req.id)) return;
    reply_data(conn, f, kKsRefOk, store_.ref_prepare(req.id, req.epoch, req.payload));
  }

  void handle_ref_commit(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("ks.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    KsRequest req = decode_ks(f);
    check_owned(req.id);
    reply_data(conn, f, kKsRefCommitOk,
               service::encode_commit_ok(store_.ref_commit(req.id, req.epoch, req.payload)));
  }

  void handle_hello(transport::Conn& conn, const transport::Frame& f) {
    KsHello kh;
    try {
      kh = decode_ks_hello(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    check_owned(kh.id);
    service::HelloOk ok = store_.hello(kh.id, kh.hello);
    ok.version = std::min<std::uint8_t>(kh.hello.version, service::kWireDeadlineVersion);
    reply_data(conn, f, kKsHelloOk, service::encode_hello_ok(ok));
  }

  void handle_put(transport::Conn& conn, const transport::Frame& f) {
    KsPut p;
    try {
      p = decode_ks_put(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    check_owned(p.id);
    try {
      ByteReader sr(p.sk2_ser);
      store_.put(p.id, Core::deser_sk2(store_gg(), sr));
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    reply_data(conn, f, kKsPutOk, {});
  }

  // ---- live resharding: wire handlers (DESIGN.md §14) -------------------

  /// ks.migrate.* and ks.map.propose refuse to advance the protocol while a
  /// simulated crash is in effect -- to the peer this shard IS down.
  void check_not_halted() const {
    if (mig_halted_.load())
      throw ServiceError(ServiceErrc::Internal, 0, "migration machinery halted");
  }

  void handle_map_propose(transport::Conn& conn, const transport::Frame& f) {
    check_not_halted();
    KsMapPropose p;
    ShardMap proposed;
    try {
      p = decode_ks_map_propose(f.body);
      proposed = ShardMap::decode(p.map_body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    if (p.min_wire_version > service::kWireDeadlineVersion) {
      send_err(conn, f, ServiceErrc::BadRequest, 0,
               "proposal requires wire version " + std::to_string(p.min_wire_version) +
                   "; this shard speaks " +
                   std::to_string(service::kWireDeadlineVersion));
      return;
    }
    const std::size_t outgoing = propose_map(std::move(proposed));
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(outgoing));
    reply_data(conn, f, kKsMapProposeOk, w.take());
  }

  void handle_mig_offer(transport::Conn& conn, const transport::Frame& f) {
    check_not_halted();
    KsMigrate m;
    try {
      m = decode_ks_migrate(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    const Bytes digest =
        store_.stage_incoming(m.id, m.map_version, m.from_shard, m.blob, m.spent_millibits);
    reply_data(conn, f, kKsMigOfferOk, digest);
  }

  void handle_mig_commit(transport::Conn& conn, const transport::Frame& f) {
    check_not_halted();
    KsMigrate m;
    try {
      m = decode_ks_migrate(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    store_.commit_incoming(m.id, m.blob, m.spent_millibits);
    mig_in_total_.fetch_add(1);
    telemetry::Registry::global().counter("ks.migrate.in").add();
    reply_data(conn, f, kKsMigCommitOk, {});
  }

  void handle_mig_done(transport::Conn& conn, const transport::Frame& f) {
    check_not_halted();
    KsMigDone d;
    try {
      d = decode_ks_mig_done(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    {
      std::lock_guard lk(map_mu_);
      auto& seen = mig_done_seen_[d.from_shard];
      seen = std::max(seen, d.map_version);
      if (d.map_version >= mig_window_version_) mig_await_done_.erase(d.from_shard);
    }
    reply_data(conn, f, kKsMigDoneOk, {});
  }

  // ---- live resharding: driver ------------------------------------------

  /// Re-enqueue journaled mid-migration keys (called from start() and after
  /// a map install): Released keys resume commit-only against their recorded
  /// destination; Marked keys re-resolve against the current map.
  void resume_migrations() {
    std::size_t queued = 0;
    {
      std::lock_guard lk(mig_mu_);
      for (const auto& [id, st] : store_.migrating_keys())
        if (mig_queued_.insert(id).second) {
          mig_queue_.push_back(id);
          ++queued;
        }
    }
    if (queued > 0) {
      telemetry::Registry::global().counter("ks.migrate.resumes").add(queued);
      mig_cv_.notify_all();
    }
  }

  /// The retry-forever migration driver: one key at a time, transient errors
  /// (destination down, transport cut) put the key back on the queue; a
  /// MigrationHalt from a crash hook parks everything. Once the queue drains,
  /// broadcast ks.migrate.done so peers can close their reshard windows.
  void migrate_loop() {
    std::unique_lock lk(mig_mu_);
    for (;;) {
      mig_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
        return mig_stop_ || (!mig_halted_.load() &&
                             (!mig_queue_.empty() || mig_broadcast_pending_));
      });
      if (mig_stop_) return;
      if (mig_halted_.load()) continue;
      if (!mig_queue_.empty()) {
        KeyId id = mig_queue_.front();
        mig_queue_.pop_front();
        lk.unlock();
        bool finished = false;
        try {
          migrate_one(id);
          finished = true;
        } catch (const MigrationHalt&) {
          mig_halted_.store(true);
          finished = true;  // parked; a restart rescans the journal
        } catch (const std::exception&) {
          telemetry::Registry::global().counter("ks.migrate.retries").add();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        lk.lock();
        if (finished)
          mig_queued_.erase(id);
        else
          mig_queue_.push_back(id);  // still in mig_queued_: dedupe holds
        telemetry::Registry::global()
            .gauge("ks.migrate.backlog")
            .set(static_cast<double>(mig_queued_.size()));
        continue;
      }
      if (mig_broadcast_pending_) {
        lk.unlock();
        const bool all_acked = broadcast_done();
        lk.lock();
        if (all_acked) mig_broadcast_pending_ = false;
      }
    }
  }

  /// One key's full hand-off. Every step is idempotent, so this is safe to
  /// re-run from any crash point: a Released key skips the offer (release
  /// only ever happens after a durable stage ack, and re-offering could race
  /// a destination that is already serving + refreshing the key).
  void migrate_one(const KeyId& id) {
    const auto st = store_.mig_status(id);
    if (st.state == MigState::Staged) return;  // incoming copy, not ours to move
    std::uint64_t ver = st.map_version;
    std::uint32_t dest = st.dest;
    if (st.state != MigState::Released) {
      const ShardMap snap = shard_map();
      if (snap.empty()) return;  // resumes when a map is installed
      ver = snap.version();
      dest = snap.owner(id);
      if (dest == opt_.shard_id) {
        store_.unmark_migrating(id);  // the map keeps (or gave back) this key
        return;
      }
      store_.mark_migrating(id, ver, dest);
      const auto exp = store_.export_migrating(id);
      const Bytes acked = peer_call(
          dest, kKsMigOffer,
          encode_ks_migrate({ver, opt_.shard_id, id, exp.spent_millibits, exp.state}),
          kKsMigOfferOk);
      if (acked != exp.digest)
        throw ServiceError(ServiceErrc::Internal, 0,
                           "offer ack digest mismatch for " + id.display());
    }
    const std::uint64_t spent = store_.release_migrating(id);
    const auto exp = store_.export_migrating(id);
    (void)peer_call(dest, kKsMigCommit,
                    encode_ks_migrate({ver, opt_.shard_id, id, spent, exp.digest}),
                    kKsMigCommitOk);
    store_.finalize_migrated(id);
    mig_out_total_.fetch_add(1);
    telemetry::Registry::global().counter("ks.migrate.out").add();
  }

  /// Tell every shard of the proposed map that this shard has no more
  /// outgoing keys. Unreachable peers keep the broadcast pending; the driver
  /// retries on its 50 ms tick.
  bool broadcast_done() {
    std::map<std::uint32_t, std::uint64_t> targets;
    {
      std::lock_guard lk(mig_mu_);
      targets = mig_done_targets_;
    }
    bool all = true;
    for (const auto& [shard, owed] : targets) {
      try {
        (void)peer_call(shard, kKsMigDone, encode_ks_mig_done(owed, opt_.shard_id),
                        kKsMigDoneOk);
        std::lock_guard lk(mig_mu_);
        // A racing propose may have bumped what we owe this peer after the
        // snapshot above; delivering the stale version must not retire the
        // target or the peer's new window never hears from us.
        if (auto it = mig_done_targets_.find(shard);
            it != mig_done_targets_.end() && it->second <= owed)
          mig_done_targets_.erase(it);
      } catch (const std::exception&) {
        all = false;
      }
    }
    if (all) {
      std::lock_guard lk(mig_mu_);
      all = mig_done_targets_.empty();
    }
    return all;
  }

  /// Lazily-connected peer mux (shard-to-shard lane), replaced on transport
  /// failure by peer_call.
  [[nodiscard]] std::shared_ptr<transport::SessionMux> peer_mux(std::uint32_t shard) {
    {
      std::lock_guard lk(peer_mu_);
      const auto it = peer_muxes_.find(shard);
      if (it != peer_muxes_.end()) return it->second;
    }
    std::uint16_t port = 0;
    {
      std::lock_guard lk(map_mu_);
      const ShardInfo* s = map_.shard(shard);
      if (!s)
        throw ServiceError(ServiceErrc::Internal, 0,
                           "no address for peer shard " + std::to_string(shard));
      port = s->port;
    }
    auto fc = std::make_shared<transport::FramedConn>(
        transport::connect_loopback(port, opt_.transport), opt_.transport);
    auto m = std::make_shared<transport::SessionMux>(
        std::static_pointer_cast<transport::Conn>(std::move(fc)));
    std::lock_guard lk(peer_mu_);
    const auto [it, inserted] = peer_muxes_.emplace(shard, m);
    if (!inserted) {
      m->stop();
      return it->second;
    }
    return m;
  }

  /// One request/response to a peer shard. Transport failure drops the lane
  /// (next call reconnects, picking up a restarted peer's new port from the
  /// re-proposed map) and rethrows for the driver's requeue.
  [[nodiscard]] Bytes peer_call(std::uint32_t shard, const char* label, const Bytes& body,
                                const char* ok_label) {
    auto m = peer_mux(shard);
    try {
      auto sess = m->open();
      sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P2),
                 label, body);
      // Short relative to the client-facing 10 s default: migration frames
      // are small and peer shards are one loopback hop away, so a stuck
      // peer should requeue the key quickly instead of pinning the driver.
      return service::expect_ok(sess->recv(transport::Millis{2000}), ok_label);
    } catch (const transport::TransportError&) {
      std::lock_guard lk(peer_mu_);
      const auto it = peer_muxes_.find(shard);
      if (it != peer_muxes_.end() && it->second == m) {
        it->second->stop();
        peer_muxes_.erase(it);
      }
      throw;
    }
  }

  // ---- single-key compatibility routes (svc.*, PR 2-5 wire format) ----

  void handle_compat_dec(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.dec",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    service::Request req = decode_svc(f);
    const auto out = store_.dec(default_key_id(), req.epoch, req.round1);
    reply_data(conn, f, service::kLabelDecOk, Bytes(out.reply));
  }

  void handle_compat_ref(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    service::Request req = decode_svc(f);
    if (maybe_shed_refresh(conn, f, default_key_id())) return;
    reply_data(conn, f, service::kLabelRefOk,
               store_.ref_prepare(default_key_id(), req.epoch, req.round1));
  }

  void handle_compat_commit(transport::Conn& conn, const transport::Frame& f) {
    service::CommitMsg cm;
    try {
      cm = service::decode_commit(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    reply_data(conn, f, service::kLabelRefCommitOk,
               service::encode_commit_ok(
                   store_.ref_commit(default_key_id(), cm.epoch, cm.digest)));
  }

  void handle_compat_hello(transport::Conn& conn, const transport::Frame& f) {
    service::HelloMsg h;
    try {
      h = service::decode_hello(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    service::HelloOk ok = store_.hello(default_key_id(), h);
    ok.version = std::min<std::uint8_t>(h.version, service::kWireDeadlineVersion);
    reply_data(conn, f, service::kLabelHelloOk, service::encode_hello_ok(ok));
  }

  [[nodiscard]] KsRequest decode_ks(const transport::Frame& f) const {
    try {
      return decode_ks_request(f.body);
    } catch (const std::exception& e) {
      throw ServiceError(ServiceErrc::BadRequest, 0, e.what());
    }
  }

  [[nodiscard]] service::Request decode_svc(const transport::Frame& f) const {
    try {
      return service::decode_request(f.body);
    } catch (const std::exception& e) {
      throw ServiceError(ServiceErrc::BadRequest, 0, e.what());
    }
  }

  /// The store's group, for deserializing ks.put payloads.
  [[nodiscard]] const GG& store_gg() const { return store_.gg(); }

  static void stamp_reply(transport::Frame& out, const transport::Frame& req) {
    if (req.trace_id == 0) return;
    const auto ctx = telemetry::Tracer::global().current();
    out.trace_id = ctx.active() ? ctx.trace_id : req.trace_id;
    out.parent_span = ctx.active() ? ctx.span_id : req.parent_span;
  }

  void reply_data(transport::Conn& conn, const transport::Frame& req, const char* label,
                  Bytes body) {
    transport::Frame out{req.session, transport::FrameType::Data,
                         static_cast<std::uint8_t>(net::DeviceId::P2), label,
                         std::move(body)};
    stamp_reply(out, req);
    conn.send(out);
  }

  void send_err(transport::Conn& conn, const transport::Frame& req, ServiceErrc code,
                std::uint64_t server_epoch, const std::string& msg,
                std::uint32_t retry_after_ms = 0) {
    transport::Frame out{req.session, transport::FrameType::Error,
                         static_cast<std::uint8_t>(net::DeviceId::P2),
                         service::kLabelErr,
                         service::encode_error(code, server_epoch, msg, retry_after_ms)};
    stamp_reply(out, req);
    conn.send(out);
  }

  /// Rate-limited Shed event (every 256th): sustained overload must not
  /// evict the rare events (breaker transitions, epoch changes) from the
  /// bounded ring a post-mortem actually needs.
  static void shed_event(const std::string& detail, std::uint64_t nth) {
    if (nth % 256 == 1)
      telemetry::event(telemetry::EventKind::Shed, detail + " n=" + std::to_string(nth));
  }

  /// Graceful degradation (DESIGN.md §13): past the high-water mark,
  /// background refresh PREPAREs yield their worker time to decrypts --
  /// EXCEPT for a key whose leakage budget is nearly spent
  /// (spent_frac >= refresh_shed_floor): its refresh is the one background
  /// job that must not wait, because shedding it converts an availability
  /// problem into a leakage-tolerance problem. Commits are never shed: they
  /// finish an already-paid-for 2PC and release the drain barrier.
  /// Returns true when the prepare was shed (error already sent).
  bool maybe_shed_refresh(transport::Conn& conn, const transport::Frame& f,
                          const KeyId& id) {
    const std::size_t depth = batcher_.queued() + (pool_ ? pool_->queued() : 0);
    if (!gov_.degraded(depth)) return false;
    double frac = 0.0;
    try {
      frac = store_.spent_frac(id);
    } catch (const std::exception&) {
      // Unknown key: let the prepare proceed and fail with the typed error.
      return false;
    }
    if (frac >= opt_.refresh_shed_floor) return false;  // leakage floor: serve it
    gov_.count_shed_refresh();
    shed_event("cause=degraded label=" + f.label + " key=" + id.display() +
                   " depth=" + std::to_string(depth),
               gov_.shed_refresh());
    send_err(conn, f, ServiceErrc::Overloaded, 0, "degraded: refresh deprioritized",
             gov_.retry_after_ms(depth));
    return true;
  }

  Options opt_;
  Store store_;
  service::BatchCollector<KsDecJob> batcher_;
  service::OverloadGovernor gov_;
  std::vector<std::thread> crypto_threads_;
  mutable std::mutex map_mu_;
  ShardMap map_;
  // Reshard window, guarded by map_mu_: peers whose done broadcast we still
  // await (at mig_window_version_), plus the highest done version ever seen
  // per peer -- a done racing ahead of our own propose must still count.
  std::set<std::uint32_t> mig_await_done_;
  std::uint64_t mig_window_version_ = 0;
  std::map<std::uint32_t, std::uint64_t> mig_done_seen_;
  // Migration driver state, guarded by mig_mu_. mig_queued_ covers queued +
  // in-flight keys so propose/resume re-enqueues dedupe.
  mutable std::mutex mig_mu_;
  std::condition_variable mig_cv_;
  std::deque<KeyId> mig_queue_;
  std::unordered_set<KeyId, KeyIdHash> mig_queued_;
  /// Peers owed a ks.migrate.done broadcast -> the highest map version owed.
  std::map<std::uint32_t, std::uint64_t> mig_done_targets_;
  bool mig_broadcast_pending_ = false;
  bool mig_stop_ = false;
  std::thread mig_thread_;
  std::atomic<bool> mig_halted_{false};
  std::atomic<std::uint64_t> mig_out_total_{0};
  std::atomic<std::uint64_t> mig_in_total_{0};
  // Shard-to-shard connection per peer, guarded by peer_mu_.
  std::mutex peer_mu_;
  std::map<std::uint32_t, std::shared_ptr<transport::SessionMux>> peer_muxes_;
  transport::Listener listener_;
  std::unique_ptr<service::WorkerPool> pool_;
  std::unique_ptr<service::AdminServer> admin_;
  std::thread accept_thread_;
  std::thread compact_thread_;
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_stop_ = false;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_stop_{false};
};

}  // namespace dlr::keystore
