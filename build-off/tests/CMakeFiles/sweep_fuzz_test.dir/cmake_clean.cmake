file(REMOVE_RECURSE
  "CMakeFiles/sweep_fuzz_test.dir/sweep_fuzz_test.cpp.o"
  "CMakeFiles/sweep_fuzz_test.dir/sweep_fuzz_test.cpp.o.d"
  "sweep_fuzz_test"
  "sweep_fuzz_test.pdb"
  "sweep_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
