file(REMOVE_RECURSE
  "CMakeFiles/ibe_mail.dir/ibe_mail.cpp.o"
  "CMakeFiles/ibe_mail.dir/ibe_mail.cpp.o.d"
  "ibe_mail"
  "ibe_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibe_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
