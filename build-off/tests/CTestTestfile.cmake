# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-off/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-off/tests/mpint_test[1]_include.cmake")
include("/root/repo/build-off/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-off/tests/field_test[1]_include.cmake")
include("/root/repo/build-off/tests/pairing_test[1]_include.cmake")
include("/root/repo/build-off/tests/group_backend_test[1]_include.cmake")
include("/root/repo/build-off/tests/masked_enc_test[1]_include.cmake")
include("/root/repo/build-off/tests/dlr_test[1]_include.cmake")
include("/root/repo/build-off/tests/game_test[1]_include.cmake")
include("/root/repo/build-off/tests/ibe_test[1]_include.cmake")
include("/root/repo/build-off/tests/cca2_test[1]_include.cmake")
include("/root/repo/build-off/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-off/tests/storage_test[1]_include.cmake")
include("/root/repo/build-off/tests/cca2_game_test[1]_include.cmake")
include("/root/repo/build-off/tests/net_analysis_test[1]_include.cmake")
include("/root/repo/build-off/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build-off/tests/dlr_property_test[1]_include.cmake")
include("/root/repo/build-off/tests/sweep_fuzz_test[1]_include.cmake")
include("/root/repo/build-off/tests/fake_game_test[1]_include.cmake")
include("/root/repo/build-off/tests/ibe_game_test[1]_include.cmake")
include("/root/repo/build-off/tests/perf_paths_test[1]_include.cmake")
include("/root/repo/build-off/tests/proactive_test[1]_include.cmake")
include("/root/repo/build-off/tests/soak_test[1]_include.cmake")
