file(REMOVE_RECURSE
  "CMakeFiles/group_backend_test.dir/group_backend_test.cpp.o"
  "CMakeFiles/group_backend_test.dir/group_backend_test.cpp.o.d"
  "group_backend_test"
  "group_backend_test.pdb"
  "group_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
