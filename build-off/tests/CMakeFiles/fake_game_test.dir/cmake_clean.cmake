file(REMOVE_RECURSE
  "CMakeFiles/fake_game_test.dir/fake_game_test.cpp.o"
  "CMakeFiles/fake_game_test.dir/fake_game_test.cpp.o.d"
  "fake_game_test"
  "fake_game_test.pdb"
  "fake_game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fake_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
