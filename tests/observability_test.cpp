// Observability plane (DESIGN.md §10): end-to-end trace propagation over
// real sockets, the admin endpoint's Prometheus scrape and health document,
// hello version negotiation against a legacy peer, trace integrity under the
// PR 4 fault injector, and the structured event log.
//
// A listener dumps the event ring to stderr whenever a test here fails, so a
// red chaos run leaves a diagnosable artifact instead of a bare assertion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "group/mock_group.hpp"
#include "service/admin.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"
#include "telemetry/events.hpp"
#include "telemetry/export.hpp"
#include "transport/fault.hpp"

namespace dlr::service {
namespace {

using group::make_mock;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

// ---- auto-dump events on failure (ISSUE 6 tentpole layer 3) -------------------

class EventDumpOnFailure : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!info.result()->Failed()) return;
    const std::string dump = telemetry::EventLog::global().dump_jsonl();
    std::fprintf(stderr, "---- event log at failure of %s.%s ----\n%s----\n",
                 info.test_suite_name(), info.name(), dump.c_str());
  }
};

const bool g_event_dump_registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new EventDumpOnFailure);
  return true;
}();

void reset_telemetry() {
  telemetry::Registry::global().reset();
  telemetry::Tracer::global().reset();
  telemetry::EventLog::global().reset();
}

struct Obs {
  MockGroup gg = make_mock();
  schemes::DlrParams prm =
      schemes::DlrParams::derive(make_mock().scalar_bits(), make_mock().scalar_bits());
  Core::KeyGenResult kg;
  std::unique_ptr<P2Server<MockGroup>> server;
  std::shared_ptr<P1Runtime<MockGroup>> p1;

  explicit Obs(typename P2Server<MockGroup>::Options opt = {}, std::uint64_t seed = 9000) {
    reset_telemetry();
    crypto::Rng rng(seed);
    kg = Core::gen(gg, prm, rng);
    server = std::make_unique<P2Server<MockGroup>>(gg, prm, kg.sk2, crypto::Rng(seed + 1),
                                                   opt);
    server->start();
    p1 = std::make_shared<P1Runtime<MockGroup>>(gg, prm, kg.pk, kg.sk1,
                                                schemes::P1Mode::Plain,
                                                crypto::Rng(seed + 2));
  }
  ~Obs() {
    if (server) server->stop();
  }

  DecryptionClient<MockGroup> client(
      typename DecryptionClient<MockGroup>::Options opt = {}) {
    return DecryptionClient<MockGroup>(p1, server->port(), opt);
  }

  typename Core::Ciphertext encrypt(const typename MockGroup::GT& m, crypto::Rng& rng) {
    return Core::enc(gg, kg.pk, m, rng);
  }
};

using Imported = telemetry::Imported;

/// Stop the server (joining its workers so their spans are final), export
/// every span through the JSONL round-trip, and hand back the parsed view --
/// the test sees exactly what an operator's artifact would contain.
Imported exported_spans(Obs& svc) {
  svc.server->stop();
  return telemetry::import_jsonl(telemetry::to_jsonl(telemetry::ExportMeta{"obs"},
                                                     telemetry::Snapshot{},
                                                     telemetry::Tracer::global().spans()));
}

std::vector<const telemetry::Span*> spans_labeled(const Imported& imp,
                                                  const std::string& label) {
  std::vector<const telemetry::Span*> out;
  for (const auto& s : imp.spans)
    if (s.label == label) out.push_back(&s);
  return out;
}

// ---- acceptance: one decryption = one cross-layer trace tree ------------------

TEST(ObservabilityTraceTest, SingleDecryptionYieldsOneTraceTreeAcrossLayers) {
  Obs svc;
  auto client = svc.client();
  crypto::Rng rng(1);
  const auto m = svc.gg.gt_random(rng);
  ASSERT_TRUE(svc.gg.gt_eq(client.decrypt(svc.encrypt(m, rng)), m));
  EXPECT_EQ(client.wire_version(), kWireDeadlineVersion);

  const auto imp = exported_spans(svc);
#if DLR_TELEMETRY_ENABLED
  const auto roots = spans_labeled(imp, "svc.client.dec");
  const auto attempts = spans_labeled(imp, "svc.client.attempt");
  const auto workers = spans_labeled(imp, "svc.dec");
  const auto crypto_cli = spans_labeled(imp, "dec.round1");
  const auto crypto_srv = spans_labeled(imp, "dec.round2");
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(attempts.size(), 1u);
  ASSERT_EQ(workers.size(), 1u);
  ASSERT_EQ(crypto_cli.size(), 1u);
  ASSERT_EQ(crypto_srv.size(), 1u);

  const auto trace = roots[0]->trace_id;
  EXPECT_NE(trace, 0u);
  EXPECT_EQ(roots[0]->parent, 0u);
  // client root -> attempt -> { dec.round1 (client crypto),
  //                             svc.dec (server worker, remote parent)
  //                               -> dec.round2 (server crypto) }
  EXPECT_EQ(attempts[0]->trace_id, trace);
  EXPECT_EQ(attempts[0]->parent, roots[0]->id);
  EXPECT_EQ(crypto_cli[0]->trace_id, trace);
  EXPECT_EQ(crypto_cli[0]->parent, attempts[0]->id);
  EXPECT_EQ(workers[0]->trace_id, trace) << "worker span did not adopt the wire trace";
  EXPECT_EQ(workers[0]->parent, attempts[0]->id)
      << "worker span did not parent under the client attempt";
  EXPECT_EQ(crypto_srv[0]->trace_id, trace);
  EXPECT_EQ(crypto_srv[0]->parent, workers[0]->id);
#else
  EXPECT_TRUE(imp.spans.empty());
#endif
}

// ---- acceptance: admin scrape agrees with the work issued ---------------------

TEST(ObservabilityAdminTest, ScrapeIsValidPrometheusAndRequestCounterMatches) {
  typename P2Server<MockGroup>::Options opt;
  opt.admin = true;
  Obs svc(opt);
  svc.p1->register_admin(*svc.server->admin());
  auto client = svc.client();
  crypto::Rng rng(2);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    const auto m = svc.gg.gt_random(rng);
    ASSERT_TRUE(svc.gg.gt_eq(client.decrypt(svc.encrypt(m, rng)), m));
  }

  ASSERT_NE(svc.server->admin_port(), 0);
  const std::string text =
      AdminClient::fetch(svc.server->admin_port(), kAdmMetrics);
  EXPECT_EQ(telemetry::prometheus_lint(text), "") << text;
  const auto samples = telemetry::parse_prometheus(text);
#if DLR_TELEMETRY_ENABLED
  ASSERT_TRUE(samples.count("svc_requests"));
  EXPECT_DOUBLE_EQ(samples.at("svc_requests"), kRequests);
#endif

  const std::string health =
      AdminClient::fetch(svc.server->admin_port(), kAdmHealth);
  EXPECT_NE(health.find("\"p2\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"p1\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"uptime_ms\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"epoch\":\"0\""), std::string::npos) << health;

  // Unknown routes are a typed error, not a hang or crash.
  EXPECT_THROW(AdminClient::fetch(svc.server->admin_port(), "adm.nope"),
               std::runtime_error);
}

TEST(ObservabilityAdminTest, ScrapeSurvivesConcurrentLoadAndCountsItself) {
  typename P2Server<MockGroup>::Options opt;
  opt.admin = true;
  Obs svc(opt);
  auto client = svc.client();
  crypto::Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    const auto m = svc.gg.gt_random(rng);
    ASSERT_TRUE(svc.gg.gt_eq(client.decrypt(svc.encrypt(m, rng)), m));
    const std::string text =
        AdminClient::fetch(svc.server->admin_port(), kAdmMetrics);
    EXPECT_EQ(telemetry::prometheus_lint(text), "");
  }
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(svc.server->admin()->scrapes(), 4u);
#endif
}

// ---- hello negotiation: legacy peers keep working, tracing stays off ----------

TEST(ObservabilityNegotiationTest, LegacyServerStillDecryptsWithTracingOff) {
  typename P2Server<MockGroup>::Options opt;
  opt.legacy_hello = true;  // a pre-trace peer: rejects the version byte
  Obs svc(opt);
  auto client = svc.client();
  EXPECT_EQ(client.wire_version(), 0u);

  crypto::Rng rng(4);
  const auto m = svc.gg.gt_random(rng);
  ASSERT_TRUE(svc.gg.gt_eq(client.decrypt(svc.encrypt(m, rng)), m));

  const auto imp = exported_spans(svc);
#if DLR_TELEMETRY_ENABLED
  // The client still spans locally, but no envelope crossed the wire: the
  // worker minted its own trace, disjoint from the client's.
  const auto roots = spans_labeled(imp, "svc.client.dec");
  const auto workers = spans_labeled(imp, "svc.dec");
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_NE(workers[0]->trace_id, roots[0]->trace_id);
  EXPECT_EQ(workers[0]->parent, 0u);
#endif
}

// ---- trace integrity under the fault injector ---------------------------------

TEST(ObservabilityFaultTest, RetriedAndDuplicatedFramesNeverCrossLinkTraces) {
  Obs svc;
  typename DecryptionClient<MockGroup>::Options copt;
  copt.request_timeout = transport::Millis{300};
  copt.max_retries = 40;
  copt.retry.base = transport::Millis{2};
  copt.retry.cap = transport::Millis{20};
  copt.conn_wrapper = [](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    transport::FaultPlan::Rates rates;
    rates.drop = 0.06;       // forces request-timeout retries
    rates.duplicate = 0.10;  // server may serve the same attempt twice
    rates.delay = 0.10;      // reorders frames across sessions
    rates.delay_ms = 2;
    return std::make_shared<transport::FaultInjector>(
        std::move(fc), transport::FaultPlan::seeded(20260807, rates));
  };
  auto client = svc.client(copt);
  crypto::Rng rng(5);
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const auto m = svc.gg.gt_random(rng);
    ASSERT_TRUE(svc.gg.gt_eq(client.decrypt(svc.encrypt(m, rng)), m));
  }

  const auto imp = exported_spans(svc);
#if DLR_TELEMETRY_ENABLED
  const auto roots = spans_labeled(imp, "svc.client.dec");
  ASSERT_EQ(roots.size(), static_cast<std::size_t>(kRequests));
  std::set<std::uint64_t> root_traces;
  std::map<std::uint64_t, std::uint64_t> attempt_trace;  // attempt id -> trace
  for (const auto* r : roots) {
    EXPECT_TRUE(root_traces.insert(r->trace_id).second)
        << "two operations shared a trace id";
  }
  std::map<std::uint64_t, int> attempts_per_trace;
  for (const auto* a : spans_labeled(imp, "svc.client.attempt")) {
    attempt_trace[a->id] = a->trace_id;
    ++attempts_per_trace[a->trace_id];
    EXPECT_TRUE(root_traces.count(a->trace_id))
        << "attempt span outside any operation's trace";
  }
  // Retries happened (the drop rate guarantees it across 24 requests), and
  // every extra attempt stayed inside its own operation's trace.
  std::size_t total_attempts = 0;
  for (const auto& [trace, n] : attempts_per_trace) total_attempts += n;
  EXPECT_GT(total_attempts, static_cast<std::size_t>(kRequests))
      << "fault plan injected no retries; raise the rates";

  for (const auto* w : spans_labeled(imp, "svc.dec")) {
    if (w->trace_id == 0) continue;  // an untraced duplicate of a dead session
    ASSERT_TRUE(attempt_trace.count(w->parent))
        << "server span parented to something that is not a client attempt";
    EXPECT_EQ(attempt_trace.at(w->parent), w->trace_id)
        << "server span cross-linked into a different operation's trace";
  }
#endif
}

// ---- structured events --------------------------------------------------------

TEST(ObservabilityEventTest, RefreshEmitsPrepareCommitPairAndSlowRequestsLog) {
  typename P2Server<MockGroup>::Options opt;
  opt.slow_request_ms = 1e-6;  // everything is "slow": the event must fire
  Obs svc(opt);
  auto client = svc.client();
  crypto::Rng rng(6);
  const auto m = svc.gg.gt_random(rng);
  ASSERT_TRUE(svc.gg.gt_eq(client.decrypt(svc.encrypt(m, rng)), m));
  client.refresh();
  EXPECT_EQ(client.epoch(), 1u);

  const auto evs = telemetry::EventLog::global().events();
#if DLR_TELEMETRY_ENABLED
  auto has = [&](telemetry::EventKind k) {
    return std::any_of(evs.begin(), evs.end(),
                       [&](const telemetry::Event& e) { return e.kind == k; });
  };
  EXPECT_TRUE(has(telemetry::EventKind::EpochPrepare));
  EXPECT_TRUE(has(telemetry::EventKind::EpochCommit));
  EXPECT_TRUE(has(telemetry::EventKind::SlowRequest));
  const std::string dump = telemetry::EventLog::global().dump_jsonl();
  EXPECT_NE(dump.find("\"kind\":\"epoch-commit\""), std::string::npos);
#else
  EXPECT_TRUE(evs.empty());
#endif
}

}  // namespace
}  // namespace dlr::service
