// Unified retry policy: bounded exponential backoff with caller-supplied
// jitter randomness and an optional overall deadline.
//
// The transport layer must not depend on crypto::Rng (layering), and retry
// jitter must stay deterministic under test seeds, so RetrySchedule::next
// takes the random word from the caller: pass rng.u64() for jittered
// production backoff, or 0 for fully deterministic doubling.
//
// Usage:
//   RetrySchedule sched(policy);
//   for (;;) {
//     try { return attempt(); }
//     catch (const RetryableThing&) {
//       const auto delay = sched.next(rng.u64());
//       if (!delay) throw;                // budget exhausted: rethrow
//       std::this_thread::sleep_for(*delay);
//     }
//   }
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>

namespace dlr::transport {

struct RetryPolicy {
  int max_attempts = 8;                    // total attempts (first + retries)
  std::chrono::milliseconds base{10};      // delay before the first retry
  std::chrono::milliseconds cap{500};      // backoff ceiling
  double jitter = 0.5;                     // +/- fraction of the delay
  std::chrono::milliseconds deadline{0};   // 0 = unbounded wall-clock budget
};

/// One retry loop's worth of mutable state over a RetryPolicy.
class RetrySchedule {
 public:
  explicit RetrySchedule(RetryPolicy p)
      : policy_(p), backoff_(p.base), start_(std::chrono::steady_clock::now()) {}

  /// Record that an attempt failed. Returns the delay to sleep before the
  /// next attempt, or nullopt when the attempt/deadline budget is exhausted
  /// (caller should surface the last error). `rnd` supplies jitter entropy;
  /// 0 disables jitter for this step. `server_hint` is a server-supplied
  /// backoff floor (e.g. the Overloaded retry-after): the returned delay is
  /// never below it -- an overloaded server's own capacity estimate beats
  /// the client's blind exponential guess.
  [[nodiscard]] std::optional<std::chrono::milliseconds> next(
      std::uint64_t rnd = 0, std::chrono::milliseconds server_hint = std::chrono::milliseconds{0}) {
    ++failed_attempts_;
    if (failed_attempts_ >= policy_.max_attempts) return std::nullopt;
    auto delay = backoff_;
    backoff_ = std::min(backoff_ * 2, policy_.cap);
    if (policy_.jitter > 0.0 && rnd != 0) {
      // Map rnd to u in [-1, 1) and scale the delay by (1 + jitter * u).
      const double u = static_cast<double>(rnd % 8192) / 4096.0 - 1.0;
      const auto ms = static_cast<long long>(
          static_cast<double>(delay.count()) * (1.0 + policy_.jitter * u));
      // Clamp to >= 1 ms: jitter = 1.0 with an unlucky rnd maps the delay to
      // 0, which turns a retry loop against an overloaded server into a hot
      // spin -- exactly the load amplification the backoff exists to avoid.
      delay = std::chrono::milliseconds{
          std::max<long long>(std::max<long long>(1, delay.count() / 2), ms)};
    }
    delay = std::max(delay, server_hint);
    if (policy_.deadline.count() > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_);
      if (elapsed + delay >= policy_.deadline) return std::nullopt;
    }
    return delay;
  }

  [[nodiscard]] int failed_attempts() const { return failed_attempts_; }

 private:
  RetryPolicy policy_;
  std::chrono::milliseconds backoff_;
  std::chrono::steady_clock::time_point start_;
  int failed_attempts_ = 0;
};

}  // namespace dlr::transport
