// A BilinearGroup decorator that counts group operations.
//
// Used by the T1 efficiency experiment (footnote 3 of the paper compares
// schemes by exponentiation/pairing counts and ciphertext sizes) and by the
// F2 experiment (demonstrating that device P2's operation profile contains
// only exponentiations and multiplications -- "simplicity of one of the two
// devices", Section 1.1).
//
// Copies share the counter block, so handing a CountingGroup<GG> to a party
// and reading the counts afterwards Just Works.
//
// Every operation is also published live into the global telemetry registry
// under per-backend labels ("group.exp{backend=ss512}", ...), so a protocol
// run leaves its group-op profile queryable/exportable without the caller
// threading OpCounts around. Handles are resolved once per CountingGroup and
// the increments are relaxed atomics; with DLR_TELEMETRY=OFF they vanish.
#pragma once

#include <memory>
#include <vector>

#include "group/bilinear.hpp"
#include "group/prepared.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::group {

struct OpCounts {
  std::size_t g_mul = 0;
  std::size_t g_pow = 0;
  std::size_t g_inv = 0;
  std::size_t gt_mul = 0;
  std::size_t gt_pow = 0;
  std::size_t gt_inv = 0;
  std::size_t pairings = 0;
  std::size_t multi_pows = 0;       // calls to g/gt_multi_pow
  std::size_t multi_pow_terms = 0;  // total bases across those calls
  std::size_t g_random = 0;
  std::size_t gt_random = 0;
  std::size_t sc_random = 0;
  std::size_t hash_to_g = 0;

  [[nodiscard]] std::size_t exps() const { return g_pow + gt_pow; }
  [[nodiscard]] std::size_t muls() const { return g_mul + gt_mul; }

  void reset() { *this = OpCounts{}; }

  OpCounts operator-(const OpCounts& o) const {
    OpCounts r;
    r.g_mul = g_mul - o.g_mul;
    r.g_pow = g_pow - o.g_pow;
    r.g_inv = g_inv - o.g_inv;
    r.gt_mul = gt_mul - o.gt_mul;
    r.gt_pow = gt_pow - o.gt_pow;
    r.gt_inv = gt_inv - o.gt_inv;
    r.pairings = pairings - o.pairings;
    r.multi_pows = multi_pows - o.multi_pows;
    r.multi_pow_terms = multi_pow_terms - o.multi_pow_terms;
    r.g_random = g_random - o.g_random;
    r.gt_random = gt_random - o.gt_random;
    r.sc_random = sc_random - o.sc_random;
    r.hash_to_g = hash_to_g - o.hash_to_g;
    return r;
  }
};

template <BilinearGroup GG>
class CountingGroup {
 public:
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;
  using GT = typename GG::GT;

  explicit CountingGroup(GG inner)
      : inner_(std::move(inner)), counts_(std::make_shared<OpCounts>()) {
    const telemetry::Labels backend{{"backend", inner_.name()}};
    auto& reg = telemetry::Registry::global();
    tm_exp_ = &reg.counter("group.exp", backend);
    tm_mul_ = &reg.counter("group.mul", backend);
    tm_inv_ = &reg.counter("group.inv", backend);
    tm_pairing_ = &reg.counter("group.pairing", backend);
    tm_multi_pow_ = &reg.counter("group.multi_pow", backend);
    tm_multi_pow_terms_ = &reg.counter("group.multi_pow_terms", backend);
    tm_random_ = &reg.counter("group.random", backend);
    tm_hash_ = &reg.counter("group.hash_to_g", backend);
  }

  [[nodiscard]] const OpCounts& counts() const { return *counts_; }
  [[nodiscard]] OpCounts snapshot() const { return *counts_; }
  void reset_counts() { counts_->reset(); }
  [[nodiscard]] const GG& inner() const { return inner_; }

  [[nodiscard]] std::size_t scalar_bits() const { return inner_.scalar_bits(); }
  [[nodiscard]] Scalar sc_random(crypto::Rng& rng) const {
    ++counts_->sc_random;
    tm_random_->add();
    return inner_.sc_random(rng);
  }
  [[nodiscard]] Scalar sc_from_u64(std::uint64_t v) const { return inner_.sc_from_u64(v); }
  [[nodiscard]] Scalar sc_add(const Scalar& a, const Scalar& b) const {
    return inner_.sc_add(a, b);
  }
  [[nodiscard]] Scalar sc_sub(const Scalar& a, const Scalar& b) const {
    return inner_.sc_sub(a, b);
  }
  [[nodiscard]] Scalar sc_mul(const Scalar& a, const Scalar& b) const {
    return inner_.sc_mul(a, b);
  }
  [[nodiscard]] Scalar sc_neg(const Scalar& a) const { return inner_.sc_neg(a); }
  [[nodiscard]] Scalar sc_inv(const Scalar& a) const { return inner_.sc_inv(a); }
  [[nodiscard]] bool sc_eq(const Scalar& a, const Scalar& b) const { return inner_.sc_eq(a, b); }
  [[nodiscard]] bool sc_is_zero(const Scalar& a) const { return inner_.sc_is_zero(a); }

  [[nodiscard]] G g_gen() const { return inner_.g_gen(); }
  [[nodiscard]] G g_id() const { return inner_.g_id(); }
  [[nodiscard]] G g_random(crypto::Rng& rng) const {
    ++counts_->g_random;
    tm_random_->add();
    return inner_.g_random(rng);
  }
  [[nodiscard]] G g_mul(const G& a, const G& b) const {
    ++counts_->g_mul;
    tm_mul_->add();
    return inner_.g_mul(a, b);
  }
  [[nodiscard]] G g_inv(const G& a) const {
    ++counts_->g_inv;
    tm_inv_->add();
    return inner_.g_inv(a);
  }
  [[nodiscard]] G g_pow(const G& a, const Scalar& s) const {
    ++counts_->g_pow;
    tm_exp_->add();
    return inner_.g_pow(a, s);
  }
  [[nodiscard]] bool g_eq(const G& a, const G& b) const { return inner_.g_eq(a, b); }
  [[nodiscard]] bool g_is_id(const G& a) const { return inner_.g_is_id(a); }
  [[nodiscard]] G hash_to_g(const Bytes& d) const {
    ++counts_->hash_to_g;
    tm_hash_->add();
    return inner_.hash_to_g(d);
  }
  [[nodiscard]] G g_multi_pow(std::span<const G> as, std::span<const Scalar> ss) const {
    ++counts_->multi_pows;
    counts_->multi_pow_terms += as.size();
    tm_multi_pow_->add();
    tm_multi_pow_terms_->add(as.size());
    return inner_.g_multi_pow(as, ss);
  }

  [[nodiscard]] GT gt_gen() const { return inner_.gt_gen(); }
  [[nodiscard]] GT gt_id() const { return inner_.gt_id(); }
  [[nodiscard]] GT gt_random(crypto::Rng& rng) const {
    ++counts_->gt_random;
    tm_random_->add();
    return inner_.gt_random(rng);
  }
  [[nodiscard]] GT gt_mul(const GT& a, const GT& b) const {
    ++counts_->gt_mul;
    tm_mul_->add();
    return inner_.gt_mul(a, b);
  }
  [[nodiscard]] GT gt_inv(const GT& a) const {
    ++counts_->gt_inv;
    tm_inv_->add();
    return inner_.gt_inv(a);
  }
  [[nodiscard]] GT gt_pow(const GT& a, const Scalar& s) const {
    ++counts_->gt_pow;
    tm_exp_->add();
    return inner_.gt_pow(a, s);
  }
  [[nodiscard]] bool gt_eq(const GT& a, const GT& b) const { return inner_.gt_eq(a, b); }
  [[nodiscard]] bool gt_is_id(const GT& a) const { return inner_.gt_is_id(a); }
  [[nodiscard]] GT gt_multi_pow(std::span<const GT> ts, std::span<const Scalar> ss) const {
    ++counts_->multi_pows;
    counts_->multi_pow_terms += ts.size();
    tm_multi_pow_->add();
    tm_multi_pow_terms_->add(ts.size());
    return inner_.gt_multi_pow(ts, ss);
  }

  [[nodiscard]] GT pair(const G& a, const G& b) const {
    ++counts_->pairings;
    tm_pairing_->add();
    return inner_.pair(a, b);
  }

  // ---- fast-lane native forwards (present iff the inner backend has them) ----

  /// Counting view of a native prepared pairing: every evaluation still
  /// counts as a pairing (it is one, semantically), so the T1/F2 op profiles
  /// stay meaningful when schemes route through the fast lane.
  template <class Inner>
  class Prepared {
   public:
    Prepared(Inner inner, std::shared_ptr<OpCounts> counts, telemetry::Counter* tm)
        : inner_(std::move(inner)), counts_(std::move(counts)), tm_pairing_(tm) {}
    [[nodiscard]] GT pair(const G& b) const {
      ++counts_->pairings;
      tm_pairing_->add();
      return inner_.pair(b);
    }
    [[nodiscard]] std::vector<GT> pair_many(std::span<const G> bs) const {
      counts_->pairings += bs.size();
      tm_pairing_->add(bs.size());
      return inner_.pair_many(bs);
    }

   private:
    Inner inner_;
    std::shared_ptr<OpCounts> counts_;
    telemetry::Counter* tm_pairing_;
  };

  [[nodiscard]] auto prepare_pair(const G& a) const
    requires NativePreparedPairing<GG>
  {
    return Prepared<decltype(inner_.prepare_pair(a))>(inner_.prepare_pair(a), counts_,
                                                      tm_pairing_);
  }

  /// Counting view of a native shared-exponent multi-pow: each pow() still
  /// counts as one multi_pow over ts.size() terms (it is one, semantically),
  /// so op profiles are identical whether a batch shares the recoding or not.
  template <class Inner>
  class PreparedMultiPow {
   public:
    PreparedMultiPow(Inner inner, std::shared_ptr<OpCounts> counts,
                     telemetry::Counter* tm, telemetry::Counter* tm_terms)
        : inner_(std::move(inner)),
          counts_(std::move(counts)),
          tm_multi_pow_(tm),
          tm_multi_pow_terms_(tm_terms) {}
    [[nodiscard]] GT pow(std::span<const GT> ts) const {
      ++counts_->multi_pows;
      counts_->multi_pow_terms += ts.size();
      tm_multi_pow_->add();
      tm_multi_pow_terms_->add(ts.size());
      return inner_.pow(ts);
    }

   private:
    Inner inner_;
    std::shared_ptr<OpCounts> counts_;
    telemetry::Counter* tm_multi_pow_;
    telemetry::Counter* tm_multi_pow_terms_;
  };

  [[nodiscard]] auto prepare_gt_multi_pow(std::span<const Scalar> ss) const
    requires requires(const GG& g, std::span<const Scalar> s) { g.prepare_gt_multi_pow(s); }
  {
    return PreparedMultiPow<decltype(inner_.prepare_gt_multi_pow(ss))>(
        inner_.prepare_gt_multi_pow(ss), counts_, tm_multi_pow_, tm_multi_pow_terms_);
  }

  [[nodiscard]] G g_prod(std::span<const G> as) const
    requires requires(const GG& g, std::span<const G> s) { g.g_prod(s); }
  {
    counts_->g_mul += as.size();
    tm_mul_->add(as.size());
    return inner_.g_prod(as);
  }

  [[nodiscard]] std::vector<G> g_comb_table(const G& base, std::size_t windows) const
    requires requires(const GG& g, const G& b, std::size_t w) { g.g_comb_table(b, w); }
  {
    counts_->g_mul += 15 * windows;
    tm_mul_->add(15 * windows);
    return inner_.g_comb_table(base, windows);
  }

  [[nodiscard]] std::size_t sc_bytes() const { return inner_.sc_bytes(); }
  [[nodiscard]] std::size_t g_bytes() const { return inner_.g_bytes(); }
  [[nodiscard]] std::size_t gt_bytes() const { return inner_.gt_bytes(); }
  void sc_ser(ByteWriter& w, const Scalar& s) const { inner_.sc_ser(w, s); }
  [[nodiscard]] Scalar sc_deser(ByteReader& r) const { return inner_.sc_deser(r); }
  void g_ser(ByteWriter& w, const G& a) const { inner_.g_ser(w, a); }
  [[nodiscard]] G g_deser(ByteReader& r) const { return inner_.g_deser(r); }
  void gt_ser(ByteWriter& w, const GT& t) const { inner_.gt_ser(w, t); }
  [[nodiscard]] GT gt_deser(ByteReader& r) const { return inner_.gt_deser(r); }

  [[nodiscard]] std::string name() const { return "counting(" + inner_.name() + ")"; }

 private:
  GG inner_;
  std::shared_ptr<OpCounts> counts_;
  // Registry handles (stable for the process lifetime; shared across copies).
  telemetry::Counter* tm_exp_ = nullptr;
  telemetry::Counter* tm_mul_ = nullptr;
  telemetry::Counter* tm_inv_ = nullptr;
  telemetry::Counter* tm_pairing_ = nullptr;
  telemetry::Counter* tm_multi_pow_ = nullptr;
  telemetry::Counter* tm_multi_pow_terms_ = nullptr;
  telemetry::Counter* tm_random_ = nullptr;
  telemetry::Counter* tm_hash_ = nullptr;
};

}  // namespace dlr::group
