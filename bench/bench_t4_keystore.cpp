// T4: multi-tenant keystore throughput -- requests/sec of a sharded KsServer
// fleet serving a 10k-key keyspace under a Zipf(1.0) request mix, with the
// client-side budget-driven refresh scheduler running throughout.
//
// The bench answers three questions from DESIGN.md §11:
//
//   1. Scale tax: what fraction of the single-key service throughput
//      (bench_t3's workload, rerun here as an in-bench control point so both
//      numbers come from the same host on the same run) survives 10k keys,
//      per-key epoch machines, consistent-hash routing, and segmented
//      journaling? Gate: >= 80%.
//   2. Budget safety under skew: with the hottest keys drawing Zipf-share of
//      the traffic, does the background scheduler keep every key below its
//      leakage budget without starving decryption? (leak.ks.* gauges +
//      refresh counts in the export.)
//   3. Recovery: crash one shard (destroy the process object), restart it
//      from its segmented journal, and compare the fleet digest before and
//      after -- repeated over several restarts, reporting the p50 recovery
//      wall time and requiring zero digest mismatches.
//
// All randomness -- keygen, ciphertexts, the Zipf key sequence, workload
// shuffling -- derives from --seed, so a run replays exactly.
//
//   bench_t4_keystore [--keys N] [--shards S] [--requests R] [--clients C]
//                     [--lambda L] [--zipf Z] [--seed X] [--restarts K]
//                     [--reps R] [--json out.jsonl]
#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "group/mock_group.hpp"
#include "keystore/ks_client.hpp"
#include "keystore/ks_server.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace dlr;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;
using keystore::KeyId;
using keystore::KsFleet;
using keystore::KsServer;
using keystore::ShardInfo;
using keystore::ShardMap;

struct Config {
  int keys = 10000;
  int shards = 2;
  int requests = 20000;  // total decryptions in the timed region (~1.5 s at
                         // mock-group speeds; sub-second windows are noise)
  int clients = 4;
  std::size_t lambda = 256;
  double zipf = 1.0;
  std::uint64_t seed = 1;
  int restarts = 3;
  /// Interleaved keystore/control repetitions; the headline ratio is
  /// median-vs-median, so slow machine drift between the two measured
  /// phases cancels instead of masquerading as a keystore tax (same
  /// trick as bench_t3 --scrape).
  int reps = 3;
};

int int_flag(int argc, char** argv, const char* name, int def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  return def;
}

double double_flag(int argc, char** argv, const char* name, double def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  return def;
}

std::string make_state_dir(int shard) {
  std::string tmpl = "/tmp/dlr_bench_t4_s" + std::to_string(shard) + "_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
  return tmpl;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * (v.size() - 1))];
}

struct Fleet {
  MockGroup gg = group::make_mock();
  schemes::DlrParams prm;
  Config cfg;
  std::vector<KeyId> ids;
  std::vector<Core::KeyGenResult> kgs;
  std::vector<std::string> dirs;
  std::vector<std::unique_ptr<KsServer<MockGroup>>> servers;
  std::optional<KsFleet<MockGroup>> fleet;
  double keygen_ms = 0, provision_ms = 0;

  explicit Fleet(Config c) : cfg(c) {
    prm = schemes::DlrParams::derive(gg.scalar_bits(), cfg.lambda);

    // Keygen for every (tenant, key). Timed: it is the bulk-onboarding cost.
    const auto t0 = std::chrono::steady_clock::now();
    crypto::Rng rng(424242 + cfg.seed);
    ids.reserve(cfg.keys);
    kgs.reserve(cfg.keys);
    for (int i = 0; i < cfg.keys; ++i) {
      ids.push_back({"tenant" + std::to_string(i % 97), "key" + std::to_string(i)});
      kgs.push_back(Core::gen(gg, prm, rng));
    }
    const auto t1 = std::chrono::steady_clock::now();
    keygen_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    for (int s = 0; s < cfg.shards; ++s) {
      dirs.push_back(make_state_dir(s));
      servers.push_back(make_server(s, cfg.seed * 100 + s));
      servers.back()->start();
    }
    install_map(1);

    // Bulk provisioning through the deferred-durability path: fsync once per
    // shard at the end instead of once per key.
    const auto t2 = std::chrono::steady_clock::now();
    const ShardMap map = servers[0]->shard_map();
    for (int i = 0; i < cfg.keys; ++i)
      servers[map.owner(ids[i])]->store().put(ids[i], kgs[i].sk2);
    for (auto& s : servers)
      if (auto* j = s->store().journal()) j->flush();
    const auto t3 = std::chrono::steady_clock::now();
    provision_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();

    typename KsFleet<MockGroup>::Options fo;
    fo.refresh_threshold = 0.5;
    fo.scheduler.sweep_interval = std::chrono::milliseconds(20);
    fo.scheduler.max_concurrent = 2;
    fleet.emplace(gg, prm, crypto::Rng(cfg.seed + 7), servers[0]->port(), fo);
    fleet->set_map(servers[0]->shard_map());
    for (int i = 0; i < cfg.keys; ++i)
      fleet->add_key(ids[i], kgs[i].pk, kgs[i].sk1, schemes::P1Mode::Plain);
  }

  [[nodiscard]] std::unique_ptr<KsServer<MockGroup>> make_server(int shard,
                                                                 std::uint64_t seed) {
    typename KsServer<MockGroup>::Options so;
    so.shard_id = static_cast<std::uint32_t>(shard);
    so.workers = 4;
    so.store.state_dir = dirs[static_cast<std::size_t>(shard)];
    so.store.journal.fsync_each = false;  // bulk-load + bench mode
    so.store.budget_bits = 64;
    so.store.leak_per_dec_bits = 1;
    so.store.refresh_threshold = 0.5;
    return std::make_unique<KsServer<MockGroup>>(gg, prm, crypto::Rng(seed), so);
  }

  void install_map(std::uint64_t version) {
    std::vector<ShardInfo> infos;
    for (int s = 0; s < cfg.shards; ++s)
      infos.push_back({static_cast<std::uint32_t>(s), "", servers[s]->port()});
    const ShardMap m(version, std::move(infos));
    for (auto& s : servers) s->set_shard_map(m);
    if (fleet) fleet->set_map(m);
  }

  ~Fleet() {
    if (fleet) fleet->close();
    for (auto& s : servers)
      if (s) s->stop();
  }
};

/// The timed Zipf workload: `clients` threads, each with its own seeded Zipf
/// stream over the keyspace and a pre-encrypted, seed-shuffled request list.
double run_workload(Fleet& fx, int requests, std::atomic<int>* wrong) {
  const Config& cfg = fx.cfg;
  const int per_client = (requests + cfg.clients - 1) / cfg.clients;

  struct Req {
    std::size_t key;
    MockGroup::GT m;
    Core::Ciphertext ct;
  };
  std::vector<std::vector<Req>> work(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c) {
    bench::Zipf zipf(fx.ids.size(), cfg.zipf, cfg.seed * 1000 + c);
    crypto::Rng rng(5000 + cfg.seed * 10 + c);
    work[c].reserve(per_client);
    for (int i = 0; i < per_client; ++i) {
      Req r;
      r.key = zipf.next();
      r.m = fx.gg.gt_random(rng);
      r.ct = Core::enc(fx.gg, fx.kgs[r.key].pk, r.m, rng);
      work[c].push_back(std::move(r));
    }
    bench::seeded_shuffle(work[c], cfg.seed + c);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  ts.reserve(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c)
    ts.emplace_back([&, c] {
      for (const auto& r : work[c]) {
        const auto out = fx.fleet->decrypt(fx.ids[r.key], r.ct);
        if (!fx.gg.gt_eq(out, r.m) && wrong) wrong->fetch_add(1);
      }
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(per_client) * cfg.clients / secs;
}

/// In-bench single-key control: bench_t3's full-load shape (P2Server, one
/// key, per-client connections) under the same --requests/--clients/--seed.
double run_single_key_control(const Config& cfg) {
  MockGroup gg = group::make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), cfg.lambda);
  crypto::Rng rng(424242 + cfg.seed);
  auto kg = Core::gen(gg, prm, rng);
  auto p1 = std::make_shared<service::P1Runtime<MockGroup>>(
      gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain, crypto::Rng(cfg.seed * 2 + 1));

  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = 4;
  service::P2Server<MockGroup> server(gg, prm, kg.sk2, crypto::Rng(cfg.seed * 2 + 2),
                                      sopt);
  server.start();

  const int per_client = (cfg.requests + cfg.clients - 1) / cfg.clients;
  crypto::Rng crng(5000 + cfg.seed);
  std::vector<Core::Ciphertext> cts;
  cts.reserve(per_client);
  for (int i = 0; i < per_client; ++i)
    cts.push_back(Core::enc(gg, kg.pk, gg.gt_random(crng), crng));
  bench::seeded_shuffle(cts, cfg.seed);

  std::vector<std::unique_ptr<service::DecryptionClient<MockGroup>>> conns;
  for (int c = 0; c < cfg.clients; ++c)
    conns.push_back(
        std::make_unique<service::DecryptionClient<MockGroup>>(p1, server.port()));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int c = 0; c < cfg.clients; ++c)
    ts.emplace_back([&, c] {
      for (const auto& ct : cts) bench::sink(conns[static_cast<std::size_t>(c)]->decrypt(ct));
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  for (auto& c : conns) c->close();
  server.stop();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(per_client) * cfg.clients / secs;
}

struct RestartStats {
  std::vector<double> recovery_ms;
  int digest_mismatches = 0;
  std::size_t keys_recovered = 0;
};

/// Crash shard 0 repeatedly: digest -> destroy -> reconstruct from its
/// journal directory (timed) -> digest check -> remap -> decrypt smoke.
RestartStats run_restarts(Fleet& fx) {
  RestartStats st;
  crypto::Rng rng(31337 + fx.cfg.seed);
  for (int r = 0; r < fx.cfg.restarts; ++r) {
    const Bytes before = fx.servers[0]->store().digest_all();
    const std::size_t n = fx.servers[0]->store().size();
    fx.servers[0]->stop();
    fx.servers[0].reset();

    const auto t0 = std::chrono::steady_clock::now();
    fx.servers[0] = fx.make_server(0, /*seed=*/999999 + r);  // decoy rng
    fx.servers[0]->start();
    const auto t1 = std::chrono::steady_clock::now();
    st.recovery_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());

    if (fx.servers[0]->store().digest_all() != before ||
        fx.servers[0]->store().size() != n)
      ++st.digest_mismatches;
    st.keys_recovered = fx.servers[0]->store().size();

    fx.install_map(2 + static_cast<std::uint64_t>(r));  // new port, new version

    // Smoke: the restarted shard serves one of its own keys.
    const ShardMap map = fx.servers[0]->shard_map();
    for (std::size_t i = 0; i < fx.ids.size(); ++i) {
      if (map.owner(fx.ids[i]) != 0) continue;
      const auto m = fx.gg.gt_random(rng);
      const auto c = Core::enc(fx.gg, fx.kgs[i].pk, m, rng);
      if (!fx.gg.gt_eq(fx.fleet->decrypt(fx.ids[i], c), m)) ++st.digest_mismatches;
      break;
    }
  }
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.keys = int_flag(argc, argv, "--keys", cfg.keys);
  cfg.shards = std::max(1, int_flag(argc, argv, "--shards", cfg.shards));
  cfg.requests = int_flag(argc, argv, "--requests", cfg.requests);
  cfg.clients = std::max(1, int_flag(argc, argv, "--clients", cfg.clients));
  cfg.lambda = static_cast<std::size_t>(
      int_flag(argc, argv, "--lambda", static_cast<int>(cfg.lambda)));
  cfg.zipf = double_flag(argc, argv, "--zipf", cfg.zipf);
  cfg.seed = bench::u64_flag(argc, argv, "--seed", cfg.seed);
  cfg.restarts = int_flag(argc, argv, "--restarts", cfg.restarts);
  cfg.reps = std::max(1, int_flag(argc, argv, "--reps", cfg.reps));

  bench::banner("T4: multi-tenant keystore throughput (Zipf over sharded fleet)",
                "keystore deployment of Construction 5.3, DESIGN.md §11");

  Fleet fx(cfg);
  std::printf(
      "backend=mock  lambda=%zu  ell=%zu  keys=%d  shards=%d  clients=%d  zipf=%.2f  "
      "seed=%llu\n\n",
      cfg.lambda, fx.prm.ell, cfg.keys, cfg.shards, cfg.clients, cfg.zipf,
      static_cast<unsigned long long>(cfg.seed));

  // Interleaved reps: keystore Zipf workload (scheduler live) alternating
  // with the single-key control, median of each side.
  fx.fleet->start_scheduler();
  std::atomic<int> wrong{0};
  std::vector<double> ks_samples, single_samples;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    ks_samples.push_back(run_workload(fx, cfg.requests, &wrong));
    single_samples.push_back(run_single_key_control(cfg));
  }
  const double ks_rps = percentile(ks_samples, 0.50);
  const double single_rps = percentile(single_samples, 0.50);
  const double vs_single = single_rps > 0 ? ks_rps / single_rps * 100.0 : 0;

  // Settle: keys that crossed the threshold in the workload's final
  // milliseconds still deserve a sweep before the budget audit (bounded --
  // a scheduler that cannot drain the backlog shows up as over_threshold).
  auto backlog = [&fx] {
    std::size_t n = 0;
    for (auto& s : fx.servers) n += s->store().candidates().size();
    return n;
  };
  for (int i = 0; i < 50 && backlog() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fx.fleet->stop_scheduler();
  const std::uint64_t refreshes = fx.fleet->scheduler()->refreshes();

  // Final budget audit: candidates() publishes leak.ks.max_spent_frac.
  const std::size_t over_threshold = backlog();

  const RestartStats rs = run_restarts(fx);
  const double rec_p50 = percentile(rs.recovery_ms, 0.50);
  const double rec_max = rs.recovery_ms.empty()
                             ? 0
                             : *std::max_element(rs.recovery_ms.begin(),
                                                 rs.recovery_ms.end());

  std::uint64_t segments = 0, compactions = 0;
  for (auto& s : fx.servers)
    if (auto* j = s->store().journal()) {
      segments += j->segment_count();
      compactions += j->compactions();
    }

  auto& reg = telemetry::Registry::global();
  const telemetry::Labels tag{{"keys", std::to_string(cfg.keys)},
                              {"shards", std::to_string(cfg.shards)}};
  reg.gauge("bench.ks.rps", tag).set(ks_rps);
  reg.gauge("bench.ks.single_key_rps", tag).set(single_rps);
  reg.gauge("bench.ks.vs_single_key_pct", tag).set(vs_single);
  reg.gauge("bench.ks.keygen_ms", tag).set(fx.keygen_ms);
  reg.gauge("bench.ks.provision_ms", tag).set(fx.provision_ms);
  reg.gauge("bench.ks.refreshes", tag).set(static_cast<double>(refreshes));
  reg.gauge("bench.ks.over_threshold_final", tag).set(static_cast<double>(over_threshold));
  reg.gauge("bench.ks.wrong", tag).set(static_cast<double>(wrong.load()));
  reg.gauge("bench.ks.recovery.p50_ms", tag).set(rec_p50);
  reg.gauge("bench.ks.recovery.max_ms", tag).set(rec_max);
  reg.gauge("bench.ks.recovery.digest_mismatches", tag)
      .set(static_cast<double>(rs.digest_mismatches));
  reg.gauge("bench.ks.recovery.keys", tag).set(static_cast<double>(rs.keys_recovered));
  reg.gauge("bench.ks.journal.segments", tag).set(static_cast<double>(segments));
  reg.gauge("bench.ks.journal.compactions", tag).set(static_cast<double>(compactions));

  bench::Table table({"metric", "value"});
  table.row({"keyspace (keys / shards)",
             std::to_string(cfg.keys) + " / " + std::to_string(cfg.shards)});
  table.row({"keygen (ms, all keys)", bench::fmt(fx.keygen_ms, 1)});
  table.row({"bulk provision (ms, all keys)", bench::fmt(fx.provision_ms, 1)});
  table.row({"req/s (Zipf over keystore)", bench::fmt(ks_rps, 1)});
  table.row({"req/s (single-key control)", bench::fmt(single_rps, 1)});
  table.row({"keystore vs single-key (%)", bench::fmt(vs_single, 1)});
  table.row({"wrong plaintexts", std::to_string(wrong.load())});
  table.row({"background refreshes", std::to_string(refreshes)});
  table.row({"keys over budget threshold (final)", std::to_string(over_threshold)});
  table.row({"shard restarts / digest mismatches",
             std::to_string(cfg.restarts) + " / " + std::to_string(rs.digest_mismatches)});
  table.row({"recovery p50 / max (ms)",
             bench::fmt(rec_p50, 1) + " / " + bench::fmt(rec_max, 1)});
  table.row({"journal segments / compactions",
             std::to_string(segments) + " / " + std::to_string(compactions)});
  table.print();

  // The committed baseline is the bench.ks.* gauge set; a 20k-request run
  // accumulates tens of thousands of protocol spans that would swamp it.
  telemetry::Tracer::global().reset();
  bench::export_json_if_requested(argc, argv, "bench_t4_keystore");
  return wrong.load() == 0 && rs.digest_mismatches == 0 ? 0 : 1;
}
