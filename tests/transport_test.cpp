// Transport layer: frame codec round-trips and its never-crash/never-accept
// contract under mutation (truncation, extension, bit flips, hostile length
// prefixes), socket endpoints with deadlines and bounded retries, session
// multiplexing, and the MuxChannel transcript contract.
#include <gtest/gtest.h>

#include <thread>

#include "telemetry/metrics.hpp"
#include "transport/channel.hpp"

namespace dlr::transport {
namespace {

Frame sample_frame() {
  return Frame{7, FrameType::Data, 1, "dec.r1", Bytes{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42}};
}

// ---- frame codec --------------------------------------------------------------

TEST(FrameCodecTest, RoundTrip) {
  for (const Frame& f : {
           sample_frame(),
           Frame{0, FrameType::Close, 0, "", Bytes{}},
           Frame{0xFFFFFFFFu, FrameType::Error, 2, "svc.err", Bytes(1000, 0xAB)},
           Frame{1, FrameType::Data, 2, std::string(255, 'x'), Bytes{1}},
       }) {
    const Bytes wire = encode_frame(f);
    FrameDeframer d;
    d.feed(wire);
    const auto got = d.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, f);
    EXPECT_FALSE(d.poll().has_value());
    EXPECT_NO_THROW(d.finish());
  }
}

TEST(FrameCodecTest, MaxFrameBytesIsTheDocumentedConstant) {
  // The 32-bit length prefix is capped by a *named* constant -- the cap is
  // part of the wire contract (DESIGN.md), not an incidental buffer size.
  static_assert(kMaxFrameBytes == (1u << 24));
  static_assert(kFrameHeaderBytes == 8);
}

TEST(FrameCodecTest, OversizeLengthPrefixRejectedBeforeAllocation) {
  // Hand-craft a header claiming a ~4 GiB payload: the deframer must throw
  // FrameTooLarge the moment the prefix is complete, without buffering.
  const Bytes evil = {0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00};
  FrameDeframer d;
  try {
    d.feed(evil);
    FAIL() << "oversize length prefix accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::FrameTooLarge);
  }
  EXPECT_THROW(check_frame_len(kMaxFrameBytes + 1), TransportError);
  EXPECT_NO_THROW(check_frame_len(kMaxFrameBytes));
}

TEST(FrameCodecTest, EncodeRejectsOversizeAndBadLabel) {
  Frame f = sample_frame();
  f.label = std::string(256, 'x');
  try {
    (void)encode_frame(f);
    FAIL() << "256-byte label accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::Malformed);
  }
  f = sample_frame();
  f.body.resize(kMaxFrameBytes);  // payload = fixed + label + body > cap
  try {
    (void)encode_frame(f);
    FAIL() << "over-cap frame accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::FrameTooLarge);
  }
}

TEST(FrameCodecTest, TruncationAlwaysTyped) {
  const Bytes wire = encode_frame(sample_frame());
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    FrameDeframer d;
    d.feed({wire.data(), cut});
    EXPECT_FALSE(d.poll().has_value()) << "partial frame yielded a frame at cut " << cut;
    try {
      d.finish();
      FAIL() << "truncation at " << cut << " not detected";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.code(), Errc::Truncated);
    }
  }
}

TEST(FrameCodecTest, TrailingGarbageAlwaysTyped) {
  const Bytes wire = encode_frame(sample_frame());
  // Tails shorter than a header leave the stream mid-frame (Truncated); a
  // tail long enough to read as a length prefix may instead be rejected as a
  // hostile prefix (FrameTooLarge/Malformed). Either way: typed, never silent.
  for (const Bytes tail :
       {Bytes{0x01}, Bytes{0x00, 0x00, 0x00}, Bytes(kFrameHeaderBytes - 1, 0x5A)}) {
    Bytes stream = wire;
    stream.insert(stream.end(), tail.begin(), tail.end());
    FrameDeframer d;
    bool threw = false;
    std::size_t frames = 0;
    try {
      d.feed(stream);
      while (const auto f = d.poll()) {
        EXPECT_EQ(*f, sample_frame());
        ++frames;
      }
      d.finish();
    } catch (const TransportError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "trailing garbage silently swallowed (tail " << tail.size() << "B)";
    EXPECT_LE(frames, 1u);
  }
}

TEST(FrameCodecTest, EverySingleBitFlipIsATypedErrorNeverASilentAccept) {
  const Frame original = sample_frame();
  const Bytes wire = encode_frame(original);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes mut = wire;
    mut[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    bool typed = false;
    bool produced_frame = false;
    try {
      FrameDeframer d;
      d.feed(mut);
      while (const auto f = d.poll()) {
        produced_frame = true;
        EXPECT_NE(*f, original) << "bit " << bit << ": mutation decoded as the original";
      }
      d.finish();
    } catch (const TransportError&) {
      typed = true;
    } catch (...) {
      FAIL() << "bit " << bit << ": non-TransportError escaped";
    }
    // The CRC covers the payload and the header fields feed the length/CRC
    // checks, so every flip must surface as a typed error somewhere -- a
    // "successfully" decoded mutated frame would be silent corruption.
    EXPECT_TRUE(typed) << "bit " << bit << ": no typed error raised";
    EXPECT_FALSE(produced_frame) << "bit " << bit << ": mutated stream yielded a frame";
  }
}

TEST(FrameCodecTest, ChunkedFeedReassemblesMultipleFrames) {
  const Frame a = sample_frame();
  const Frame b{9, FrameType::Error, 2, "svc.err", Bytes{1, 2, 3}};
  Bytes stream = encode_frame(a);
  const Bytes wb = encode_frame(b);
  stream.insert(stream.end(), wb.begin(), wb.end());

  FrameDeframer d;
  std::vector<Frame> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {  // worst case: 1 byte at a time
    d.feed({stream.data() + i, 1});
    while (auto f = d.poll()) got.push_back(std::move(*f));
  }
  EXPECT_NO_THROW(d.finish());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
}

// ---- endpoints ----------------------------------------------------------------

TEST(EndpointTest, SocketpairFramedExchange) {
  auto [sa, sb] = Socket::pair();
  FramedConn ca(std::move(sa), {});
  FramedConn cb(std::move(sb), {});
  const Frame f = sample_frame();
  ca.send(f);
  EXPECT_EQ(cb.recv(), f);
  Frame g = f;
  g.session = 42;
  g.body = Bytes(100000, 0x77);  // larger than one socket buffer write
  cb.send(g);
  EXPECT_EQ(ca.recv(), g);
}

TEST(EndpointTest, RecvTimeoutIsTyped) {
  auto [sa, sb] = Socket::pair();
  FramedConn ca(std::move(sa), {});
  try {
    (void)ca.recv(Millis{50});
    FAIL() << "recv on silent peer returned";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::Timeout);
  }
}

TEST(EndpointTest, PeerCloseIsConnectionClosed) {
  auto [sa, sb] = Socket::pair();
  FramedConn ca(std::move(sa), {});
  { Socket dead = std::move(sb); }  // peer end destroyed
  try {
    (void)ca.recv(Millis{1000});
    FAIL() << "recv from closed peer returned";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::ConnectionClosed);
  }
}

TEST(EndpointTest, LoopbackListenerAcceptConnect) {
  auto listener = Listener::loopback();
  ASSERT_NE(listener.port(), 0);
  Socket client_side;
  std::thread t([&] { client_side = connect_loopback(listener.port()); });
  Socket server_side = listener.accept(Millis{2000});
  t.join();
  FramedConn server(std::move(server_side), {});
  FramedConn client(std::move(client_side), {});
  client.send(sample_frame());
  EXPECT_EQ(server.recv(), sample_frame());
}

TEST(EndpointTest, ConnectRetriesAreBoundedAndCounted) {
  // Grab an ephemeral port and free it again: nothing listens there.
  std::uint16_t dead_port;
  {
    auto l = Listener::loopback();
    dead_port = l.port();
    l.close();
  }
  auto& reg = telemetry::Registry::global();
  const auto before = reg.counter_value("transport.retries");
  TransportOptions opt;
  opt.connect_retries = 3;
  opt.connect_backoff = Millis{1};
  try {
    (void)connect_loopback(dead_port, opt);
    FAIL() << "connect to dead port succeeded";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::RetriesExhausted);
  }
#if DLR_TELEMETRY_ENABLED
  EXPECT_GE(reg.counter_value("transport.retries"), before + 3);
#endif
}

// ---- session multiplexing -----------------------------------------------------

TEST(MuxTest, TwoSessionsInterleaveOverOneConnection) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  SessionMux mb(std::make_shared<FramedConn>(std::move(sb), TransportOptions{}));

  auto a1 = ma.open_with_id(1);
  auto a2 = ma.open_with_id(2);
  auto b1 = mb.open_with_id(1);
  auto b2 = mb.open_with_id(2);

  // Send out of order w.r.t. the receiving sessions: the mux must route by id.
  b2->send(FrameType::Data, 2, "m2", Bytes{2});
  b1->send(FrameType::Data, 2, "m1", Bytes{1});
  const Frame f1 = a1->recv(Millis{2000});
  const Frame f2 = a2->recv(Millis{2000});
  EXPECT_EQ(f1.label, "m1");
  EXPECT_EQ(f1.body, Bytes{1});
  EXPECT_EQ(f2.label, "m2");
  EXPECT_EQ(f2.body, Bytes{2});
}

TEST(MuxTest, OrphanFramesAreDroppedAndCounted) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  auto conn_b = std::make_shared<FramedConn>(std::move(sb), TransportOptions{});

  auto a5 = ma.open_with_id(5);
  // Raw frame for a session that does not exist, then one that does; in-order
  // delivery means the orphan was processed by the time the real one arrives.
  conn_b->send(Frame{99, FrameType::Data, 2, "ghost", Bytes{0}});
  conn_b->send(Frame{5, FrameType::Data, 2, "real", Bytes{1}});
  EXPECT_EQ(a5->recv(Millis{2000}).label, "real");
  EXPECT_EQ(ma.orphaned(), 1u);
}

TEST(MuxTest, PeerDeathPoisonsBlockedReceivers) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  auto sess = ma.open_with_id(1);
  std::thread killer([&] {
    std::this_thread::sleep_for(Millis{50});
    Socket dead = std::move(sb);  // hang up
  });
  try {
    (void)sess->recv(Millis{5000});
    FAIL() << "recv survived peer death";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::ConnectionClosed);
  }
  killer.join();
  // Sessions opened after death are poisoned immediately.
  auto late = ma.open_with_id(2);
  EXPECT_THROW((void)late->recv(Millis{100}), TransportError);
}

TEST(MuxTest, StopIsIdempotentAndThreadSafe) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  std::thread t1([&] { ma.stop(); });
  std::thread t2([&] { ma.stop(); });
  t1.join();
  t2.join();
  ma.stop();  // and again, after the pump is gone
}

// ---- net::Channel adapter -----------------------------------------------------

TEST(MuxChannelTest, ProtocolRunsOverWireWithFullTranscriptBothSides) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  SessionMux mb(std::make_shared<FramedConn>(std::move(sb), TransportOptions{}));
  auto session_a = ma.open_with_id(1);
  auto session_b = mb.open_with_id(1);

  // A toy 3-move protocol: P1 sends a query, P2 echoes it doubled, P1 acks.
  MuxChannel ch_a(*session_a, net::DeviceId::P1);
  MuxChannel ch_b(*session_b, net::DeviceId::P2);

  std::thread p2([&] {
    Bytes q = ch_b.recv(Millis{5000});
    q.insert(q.end(), q.begin(), q.end());
    ch_b.send(net::DeviceId::P2, "echo2", std::move(q));
    (void)ch_b.recv(Millis{5000});
  });

  ch_a.send(net::DeviceId::P1, "query", Bytes{9, 9});
  const Bytes& doubled = ch_a.recv(Millis{5000});
  EXPECT_EQ(doubled, (Bytes{9, 9, 9, 9}));
  ch_a.send(net::DeviceId::P1, "ack", Bytes{});
  p2.join();

  // Section 3.2: the public transcript is identical on both devices -- every
  // message appears on each side, attributed to its true sender.
  for (const net::Transcript* tr : {&ch_a.transcript(), &ch_b.transcript()}) {
    ASSERT_EQ(tr->count(), 3u);
    EXPECT_EQ(tr->messages()[0].label, "query");
    EXPECT_EQ(tr->messages()[0].from, net::DeviceId::P1);
    EXPECT_EQ(tr->messages()[1].label, "echo2");
    EXPECT_EQ(tr->messages()[1].from, net::DeviceId::P2);
    EXPECT_EQ(tr->messages()[2].label, "ack");
  }
  EXPECT_EQ(ch_a.transcript().serialize(), ch_b.transcript().serialize());
}

}  // namespace
}  // namespace dlr::transport
