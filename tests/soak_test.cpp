// Long-run randomized soak: drive a DLR system, an IBE system and a leaky
// store through hundreds of randomly interleaved operations, checking
// correctness invariants after every step. This is the "does state ever rot"
// test that unit tests structurally cannot catch.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "schemes/dlr_ibe.hpp"
#include "storage/leaky_store.hpp"

namespace dlr {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;
using schemes::DlrParams;
using schemes::P1Mode;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

TEST(SoakTest, DlrRandomOperationSequence) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  for (const auto mode : {P1Mode::Plain, P1Mode::Compact}) {
    auto sys = schemes::DlrSystem<MockGroup>::create(gg, prm, mode, 8800);
    Rng rng(8801);
    const auto msk0 = schemes::DlrCore<MockGroup>::reconstruct_msk(
        gg, mode == P1Mode::Plain ? sys.p1().share() : sys.p1().recover_share_for_test(),
        sys.p2().share());
    int refreshes = 0, decs = 0;
    for (int step = 0; step < 300; ++step) {
      switch (rng.below(3)) {
        case 0: {  // encrypt + distributed decrypt
          const auto m = gg.gt_random(rng);
          const auto c = schemes::DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
          ASSERT_TRUE(gg.gt_eq(sys.decrypt(c), m)) << "step " << step;
          ++decs;
          break;
        }
        case 1:  // refresh
          sys.refresh();
          ++refreshes;
          break;
        default: {  // full period
          const auto m = gg.gt_random(rng);
          const auto c = schemes::DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
          const auto rec = sys.run_period(c);
          ASSERT_TRUE(gg.gt_eq(rec.dec_output, m)) << "step " << step;
          ++refreshes;
          ++decs;
          break;
        }
      }
    }
    EXPECT_GT(refreshes, 50);
    EXPECT_GT(decs, 50);
    // The invariant of the whole design: msk never changed.
    EXPECT_TRUE(gg.g_eq(
        schemes::DlrCore<MockGroup>::reconstruct_msk(
            gg, mode == P1Mode::Plain ? sys.p1().share() : sys.p1().recover_share_for_test(),
            sys.p2().share()),
        msk0));
  }
}

TEST(SoakTest, IbeRandomOperationSequence) {
  const auto gg = make_mock();
  auto sys = schemes::DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 8900);
  Rng rng(8901);
  std::vector<std::string> ids;
  for (int step = 0; step < 150; ++step) {
    switch (rng.below(4)) {
      case 0: {  // extract a fresh identity
        const auto id = "user" + std::to_string(ids.size());
        sys.extract(id);
        ids.push_back(id);
        break;
      }
      case 1: {  // encrypt/decrypt to a random known identity
        if (ids.empty()) break;
        const auto& id = ids[rng.below(ids.size())];
        const auto m = gg.gt_random(rng);
        const auto ct = sys.scheme().enc(sys.pp(), id, m, rng);
        ASSERT_TRUE(gg.gt_eq(sys.decrypt(id, ct), m)) << "step " << step;
        break;
      }
      case 2:  // refresh msk shares
        sys.refresh_msk();
        break;
      default: {  // refresh or re-randomize a random identity key
        if (ids.empty()) break;
        const auto& id = ids[rng.below(ids.size())];
        if (rng.coin()) {
          sys.refresh_id(id);
        } else {
          sys.p1().rerandomize_id_key(id, rng);
        }
        break;
      }
    }
  }
  // Every identity ever extracted still decrypts.
  for (const auto& id : ids) {
    const auto m = gg.gt_random(rng);
    ASSERT_TRUE(gg.gt_eq(sys.decrypt(id, sys.scheme().enc(sys.pp(), id, m, rng)), m));
  }
  EXPECT_GT(ids.size(), 10u);
}

TEST(SoakTest, StoreRandomOperationSequence) {
  auto store = storage::LeakyStore<MockGroup>::create(make_mock(), mock_params(),
                                                      P1Mode::Plain, 9000);
  Rng rng(9001);
  Bytes current;
  bool stored = false;
  for (int step = 0; step < 200; ++step) {
    switch (rng.below(3)) {
      case 0:
        current = rng.bytes(rng.below(300));
        store.put(current);
        stored = true;
        break;
      case 1:
        store.refresh_period();
        break;
      default:
        if (stored) {
          ASSERT_EQ(store.get(), current) << "step " << step;
        }
        break;
    }
  }
}

}  // namespace
}  // namespace dlr
