file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_fake_game.dir/bench_f10_fake_game.cpp.o"
  "CMakeFiles/bench_f10_fake_game.dir/bench_f10_fake_game.cpp.o.d"
  "bench_f10_fake_game"
  "bench_f10_fake_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_fake_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
