// KeyStore<GG> -- the multi-tenant share fleet behind one shard (DESIGN.md
// §11): (tenant, key-id) -> {DlrParty2 share, epoch machine, pending 2PC
// refresh, leakage budget}.
//
// Each key runs the PR 4 two-phase epoch commit INDEPENDENTLY -- the same
// prepare / commit / hello-reconciliation state machine as P2Server, with
// identical dedup (duplicate prepares resend the journaled reply verbatim;
// duplicate commits ack idempotently by epoch+digest; a rolled-back digest
// is remembered so a stray prepare cannot resurrect it). Where P2Server
// splits its one key across p2_mu_ + pending_mu_ + an EpochCoordinator, a
// keystore entry is small enough for ONE shared_mutex: decryptions hold it
// shared (dec_respond is const), prepare/commit/hello hold it exclusive --
// acquiring the exclusive lock IS the drain barrier, since it waits out
// every in-flight reader of that key and only that key.
//
// Persistence is one SegmentJournal for the whole store: every durable
// transition (put, prepare, commit, rollback) appends that key's full record
//
//   u64 epoch | blob sk2 | u8 has_pending [| u64 pepoch | blob digest
//                                          | blob next_sk2 | blob reply]
//             | blob rolled_back_digest
//
// and recovery is the journal's latest-seq-wins scan. Lock order is
// entry.mu -> journal-internal, never the reverse; the registry map lock
// (map_mu_) nests outside entry locks and is never held across crypto.
//
// Leakage accounting (Definition 3.2, service form): every decryption
// charges leak_per_dec_bits against the key's per-period budget_bits; a
// committed refresh starts a fresh period (spent resets to the carry, here
// 0 since the service leaks nothing during refresh itself). spent/budget
// ride on every ks.dec.ok so the client-side scheduler needs no extra
// round trips. Spent counts are deliberately NOT journaled -- a restart
// conservatively begins a fresh period; the share itself never leaks via
// the journal, which stores exactly what the device already stores.
//
// Telemetry: ks.keys (gauge), ks.recoveries, ks.dec / ks.refreshes /
// ks.rollbacks counters, leak.ks.max_spent_frac + leak.ks.over_threshold
// gauges refreshed by every candidates() sweep, and opt-in per-key
// counters ks.dec{tenant=..,key=..} (Options::per_key_metrics; see the
// cardinality note on telemetry::Labels).
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "keystore/key_id.hpp"
#include "keystore/scheduler.hpp"
#include "keystore/segment_journal.hpp"
#include "schemes/dlr.hpp"
#include "service/protocol.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::keystore {

template <group::BilinearGroup GG>
class KeyStore {
 private:
  struct Entry;  // defined below; DecSession holds one by shared_ptr

 public:
  using Core = schemes::DlrCore<GG>;
  using ServiceErrc = service::ServiceErrc;
  using ServiceError = service::ServiceError;

  struct Options {
    /// Directory for the segmented journal; empty = volatile.
    std::string state_dir;
    SegmentJournal::Options journal{};
    /// Per-period leakage budget ℓ per key, in bits.
    double budget_bits = 128;
    /// Bits charged against the budget per decryption served.
    double leak_per_dec_bits = 1.0;
    /// Fraction of the budget at which a key becomes a refresh candidate.
    double refresh_threshold = 0.5;
    /// Mint per-key labeled counters (cardinality: one series per key!).
    bool per_key_metrics = false;
  };

  struct DecOut {
    Bytes reply;
    std::uint64_t spent_millibits = 0;
    std::uint64_t budget_millibits = 0;
  };

  KeyStore(GG gg, schemes::DlrParams prm, crypto::Rng rng, Options opt)
      : gg_(std::move(gg)), prm_(prm), rng_(std::move(rng)), opt_(std::move(opt)) {
    if (!opt_.state_dir.empty()) {
      journal_ = std::make_unique<SegmentJournal>(opt_.state_dir, opt_.journal);
      auto recovered = journal_->take_recovered();
      for (auto& [id, state] : recovered) restore_one(id, state);
      if (!recovered.empty()) {
        telemetry::Registry::global().counter("ks.recoveries").add(recovered.size());
        telemetry::event(telemetry::EventKind::JournalRecovery,
                         "side=ks keys=" + std::to_string(recovered.size()));
      }
    }
    publish_keys_gauge();
  }

  KeyStore(const KeyStore&) = delete;
  KeyStore& operator=(const KeyStore&) = delete;

  /// Provision (or re-provision at epoch 0) a key. Journals before the key
  /// becomes servable.
  void put(const KeyId& id, typename Core::Sk2 sk2) {
    auto entry = std::make_shared<Entry>(gg_, prm_, std::move(sk2), next_rng());
    {
      std::unique_lock lk(entry->mu);
      persist_locked(id, *entry);
    }
    {
      std::unique_lock mlk(map_mu_);
      keys_[id] = std::move(entry);
    }
    publish_keys_gauge();
  }

  /// Drop a key (tombstoned in the journal; gone after recovery too).
  void remove(const KeyId& id) {
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock mlk(map_mu_);
      const auto it = keys_.find(id);
      if (it != keys_.end()) {
        entry = it->second;
        keys_.erase(it);
      }
    }
    if (entry) {
      // A concurrent ref_prepare/ref_commit/hello may still hold this entry's
      // shared_ptr. Taking the exclusive lock orders the tombstone after any
      // in-flight mutation's append, and marking the entry removed makes every
      // later persist_locked a no-op -- otherwise a newer-seq record would
      // follow the tombstone and latest-seq-wins recovery would resurrect the
      // key (with its share back on disk).
      std::unique_lock lk(entry->mu);
      entry->removed = true;
      if (journal_) journal_->tombstone(id);
    } else if (journal_) {
      journal_->tombstone(id);
    }
    publish_keys_gauge();
  }

  [[nodiscard]] bool contains(const KeyId& id) const {
    std::shared_lock mlk(map_mu_);
    return keys_.count(id) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock mlk(map_mu_);
    return keys_.size();
  }

  /// DistDec round 2 + budget charge. Shared entry lock; concurrent with
  /// other keys' refreshes and this key's other decryptions.
  [[nodiscard]] DecOut dec(const KeyId& id, std::uint64_t epoch, const Bytes& round1) {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    check_not_removed(id, *e);
    if (epoch != e->epoch)
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch,
                         "request epoch " + std::to_string(epoch) + " != " +
                             std::to_string(e->epoch));
    DecOut out;
    try {
      out.reply = e->p2.dec_respond(round1);
    } catch (const std::exception& ex) {
      throw ServiceError(ServiceErrc::BadRequest, e->epoch, ex.what());
    }
    out.spent_millibits = charge_locked(id, *e);
    out.budget_millibits = budget_millibits();
    return out;
  }

  /// Batched decryption against ONE key: holds the entry's shared lock and a
  /// recode-once DlrParty2::DecBatch across many run() calls, so a batch of
  /// requests pays one lock acquisition and one share-vector wNAF recoding
  /// instead of N. run() is dec() per item -- same epoch check, same budget
  /// charge, same typed errors, bit-identical replies. Because the lock is
  /// held for the whole session, a refresh commit (exclusive lock) either
  /// drains before the session starts or waits until it ends: a session never
  /// observes an epoch change mid-batch.
  class DecSession {
   public:
    DecSession(DecSession&&) = default;

    [[nodiscard]] DecOut run(std::uint64_t epoch, const Bytes& round1) {
      if (epoch != e_->epoch)
        throw ServiceError(ServiceErrc::StaleEpoch, e_->epoch,
                           "request epoch " + std::to_string(epoch) + " != " +
                               std::to_string(e_->epoch));
      DecOut out;
      try {
        out.reply = batch_.run(round1);
      } catch (const std::exception& ex) {
        throw ServiceError(ServiceErrc::BadRequest, e_->epoch, ex.what());
      }
      out.spent_millibits = ks_->charge_locked(id_, *e_);
      out.budget_millibits = ks_->budget_millibits();
      return out;
    }

    [[nodiscard]] std::uint64_t epoch() const { return e_->epoch; }

   private:
    friend class KeyStore;
    DecSession(const KeyStore* ks, KeyId id, std::shared_ptr<Entry> e)
        : ks_(ks), id_(std::move(id)), e_(std::move(e)), lk_(e_->mu),
          batch_(e_->p2.dec_batch()) {
      ks_->check_not_removed(id_, *e_);
    }

    const KeyStore* ks_;
    KeyId id_;
    std::shared_ptr<Entry> e_;
    std::shared_lock<std::shared_mutex> lk_;
    typename schemes::DlrParty2<GG>::DecBatch batch_;
  };

  /// Open a batched-decryption session for one key. Throws UnknownKey if the
  /// key does not exist (or raced a remove()).
  [[nodiscard]] DecSession dec_session(const KeyId& id) const {
    return DecSession(this, id, find(id));
  }

  /// PREPARE: compute + journal the next share; serving state untouched.
  [[nodiscard]] Bytes ref_prepare(const KeyId& id, std::uint64_t epoch,
                                  const Bytes& round1) {
    auto e = find(id);
    const Bytes digest = crypto::digest_to_bytes(crypto::Sha256::hash(round1));
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    if (e->pending && e->pending->epoch == epoch && e->pending->digest == digest)
      return e->pending->reply;  // duplicate prepare: resend verbatim
    if (!e->rolled_back_digest.empty() && e->rolled_back_digest == digest)
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch, "refresh was rolled back");
    if (epoch != e->epoch)
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch,
                         "refresh epoch " + std::to_string(epoch) + " != " +
                             std::to_string(e->epoch));
    typename schemes::DlrParty2<GG>::RefPrepared prep;
    try {
      prep = e->p2.ref_prepare(round1);
    } catch (const std::exception& ex) {
      throw ServiceError(ServiceErrc::BadRequest, e->epoch, ex.what());
    }
    const Bytes reply = prep.reply;
    e->pending.emplace();
    e->pending->epoch = epoch;
    e->pending->digest = digest;
    e->pending->next = std::move(prep.next);
    e->pending->reply = std::move(prep.reply);
    persist_locked(id, *e);
    telemetry::event(telemetry::EventKind::EpochPrepare,
                     "key=" + id.display() + " epoch=" + std::to_string(epoch));
    return reply;
  }

  /// COMMIT: install the pending share, persist, bump the epoch, reset the
  /// leakage period. The exclusive lock drains this key's in-flight
  /// decryptions. Duplicate commits ack idempotently.
  std::uint64_t ref_commit(const KeyId& id, std::uint64_t epoch, const Bytes& digest) {
    auto e = find(id);
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    if (!e->pending || e->pending->epoch != epoch || e->pending->digest != digest) {
      if (e->epoch == epoch + 1) return e->epoch;  // duplicate of installed commit
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch, "no matching prepared refresh");
    }
    e->p2.ref_install(std::move(e->pending->next));
    e->pending.reset();
    ++e->epoch;
    e->spent_millibits.store(0);  // fresh period, budget restored
    // Persist BEFORE returning the ack: once the client sees commit.ok it
    // installs its own half, so this install must never be forgotten.
    persist_locked(id, *e);
    refreshes_counter().add();
    telemetry::event(telemetry::EventKind::EpochCommit,
                     "key=" + id.display() + " epoch=" + std::to_string(e->epoch));
    return e->epoch;
  }

  /// Reconnect reconciliation for ONE key -- P2Server's verdict table
  /// (Commit iff we installed the client's pending refresh, Rollback if we
  /// never did, fork errors otherwise).
  [[nodiscard]] service::HelloOk hello(const KeyId& id, const service::HelloMsg& h) {
    auto e = find(id);
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    service::HelloOk ok;
    ok.server_epoch = e->epoch;
    if (h.has_pending) {
      if (e->epoch == h.pending_epoch + 1) {
        ok.disposition = service::RefDisposition::Commit;
      } else if (e->epoch == h.pending_epoch) {
        const bool had_pending = e->pending.has_value();
        e->pending.reset();
        e->rolled_back_digest = h.pending_digest;
        // Persist AFTER recording the digest (and even when we held no
        // pending): the no-resurrect guarantee must survive a crash, since a
        // delayed duplicate of the old prepare can arrive after restart.
        persist_locked(id, *e);
        if (had_pending)
          telemetry::event(telemetry::EventKind::EpochRollback,
                           "key=" + id.display() + " epoch=" + std::to_string(e->epoch));
        rollbacks_counter().add();
        ok.disposition = service::RefDisposition::Rollback;
      } else {
        throw ServiceError(ServiceErrc::Internal, e->epoch,
                           "epoch fork: client pending " + std::to_string(h.pending_epoch) +
                               ", server " + std::to_string(e->epoch));
      }
    } else {
      if (e->pending) {
        e->pending.reset();
        persist_locked(id, *e);
        rollbacks_counter().add();
      }
      if (e->epoch != h.epoch)
        throw ServiceError(ServiceErrc::Internal, e->epoch,
                           "epoch fork: client " + std::to_string(h.epoch) + ", server " +
                               std::to_string(e->epoch));
      ok.disposition = service::RefDisposition::None;
    }
    return ok;
  }

  /// Keys at/above the refresh threshold, for the scheduler's Source. Also
  /// refreshes the aggregate leak.ks.* gauges (this IS the sweep).
  [[nodiscard]] std::vector<RefreshScheduler::Candidate> candidates() const {
    std::vector<RefreshScheduler::Candidate> out;
    double max_frac = 0;
    {
      std::shared_lock mlk(map_mu_);
      for (const auto& [id, e] : keys_) {
        const double frac = static_cast<double>(e->spent_millibits.load()) /
                            static_cast<double>(budget_millibits());
        max_frac = std::max(max_frac, frac);
        if (frac >= opt_.refresh_threshold) out.push_back({id, frac});
      }
    }
    auto& reg = telemetry::Registry::global();
    reg.gauge("leak.ks.max_spent_frac").set(max_frac);
    reg.gauge("leak.ks.over_threshold").set(static_cast<double>(out.size()));
    return out;
  }

  [[nodiscard]] std::uint64_t epoch_of(const KeyId& id) const {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    return e->epoch;
  }

  [[nodiscard]] double spent_frac(const KeyId& id) const {
    auto e = find(id);
    return static_cast<double>(e->spent_millibits.load()) /
           static_cast<double>(budget_millibits());
  }

  [[nodiscard]] bool has_pending(const KeyId& id) const {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    return e->pending.has_value();
  }

  /// SHA-256 over every key's (tenant, key, epoch, share), sorted -- the
  /// fleet-wide state fingerprint for crash-recovery verification.
  [[nodiscard]] Bytes digest_all() const {
    std::vector<std::pair<KeyId, Bytes>> rows;
    {
      std::shared_lock mlk(map_mu_);
      rows.reserve(keys_.size());
      for (const auto& [id, e] : keys_) {
        std::shared_lock lk(e->mu);
        ByteWriter w;
        w.str(id.tenant);
        w.str(id.key);
        w.u64(e->epoch);
        Core::ser_sk2(gg_, w, e->p2.share());
        rows.emplace_back(id, w.take());
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    crypto::Sha256 h;
    for (const auto& [id, bytes] : rows) h.update(bytes);
    return crypto::digest_to_bytes(h.finish());
  }

  /// Compact the journal if it has accumulated enough sealed segments.
  bool maybe_compact() { return journal_ ? journal_->maybe_compact() : false; }

  [[nodiscard]] SegmentJournal* journal() { return journal_.get(); }
  [[nodiscard]] const GG& gg() const { return gg_; }
  [[nodiscard]] const schemes::DlrParams& params() const { return prm_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] double refresh_threshold() const { return opt_.refresh_threshold; }

 private:
  struct Pending {
    std::uint64_t epoch = 0;
    Bytes digest;
    typename Core::Sk2 next;
    Bytes reply;
  };

  struct Entry {
    Entry(const GG& gg, schemes::DlrParams prm, typename Core::Sk2 sk2, crypto::Rng rng)
        : p2(gg, prm, std::move(sk2), std::move(rng)) {}
    mutable std::shared_mutex mu;
    schemes::DlrParty2<GG> p2;
    std::uint64_t epoch = 0;
    std::optional<Pending> pending;
    Bytes rolled_back_digest;
    bool removed = false;  // set under exclusive mu by remove()
    std::atomic<std::uint64_t> spent_millibits{0};
  };

  [[nodiscard]] std::shared_ptr<Entry> find(const KeyId& id) const {
    std::shared_lock mlk(map_mu_);
    const auto it = keys_.find(id);
    if (it == keys_.end())
      throw ServiceError(ServiceErrc::UnknownKey, 0, "no key " + id.display());
    return it->second;
  }

  /// Caller holds e.mu (either mode; removed is only written under the
  /// exclusive lock). An op that raced remove() must fail typed, not mutate
  /// state the journal will never see again.
  void check_not_removed(const KeyId& id, const Entry& e) const {
    if (e.removed)
      throw ServiceError(ServiceErrc::UnknownKey, 0, "key " + id.display() + " was removed");
  }

  [[nodiscard]] std::uint64_t leak_per_dec_millibits() const {
    return static_cast<std::uint64_t>(opt_.leak_per_dec_bits * 1000.0);
  }
  [[nodiscard]] std::uint64_t budget_millibits() const {
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(opt_.budget_bits * 1000.0));
  }

  /// Budget charge + counters for one served decryption. Caller holds e.mu
  /// (shared suffices; the spent counter is atomic). Returns the new spent.
  std::uint64_t charge_locked(const KeyId& id, Entry& e) const {
    const std::uint64_t spent =
        e.spent_millibits.fetch_add(leak_per_dec_millibits()) + leak_per_dec_millibits();
    dec_counter().add();
    if (opt_.per_key_metrics)
      telemetry::Registry::global()
          .counter("ks.dec", {{"tenant", id.tenant}, {"key", id.key}})
          .add();
    return spent;
  }

  /// Serialize + append this key's durable record. Caller holds e.mu
  /// exclusively (constructor-time calls are unshared). The journal's own
  /// mutex orders concurrent appends from different keys.
  void persist_locked(const KeyId& id, Entry& e) {
    if (!journal_ || e.removed) return;
    ByteWriter w;
    w.u64(e.epoch);
    ByteWriter sw;
    Core::ser_sk2(gg_, sw, e.p2.share());
    w.blob(sw.bytes());
    w.u8(e.pending ? 1 : 0);
    if (e.pending) {
      w.u64(e.pending->epoch);
      w.blob(e.pending->digest);
      ByteWriter nw;
      Core::ser_sk2(gg_, nw, e.pending->next);
      w.blob(nw.bytes());
      w.blob(e.pending->reply);
    }
    w.blob(e.rolled_back_digest);
    journal_->append(id, w.take());
  }

  void restore_one(const KeyId& id, const Bytes& state) {
    ByteReader r(state);
    const std::uint64_t epoch = r.u64();
    const Bytes sk2b = r.blob();
    ByteReader sr(sk2b);
    auto entry = std::make_shared<Entry>(gg_, prm_, Core::deser_sk2(gg_, sr), next_rng());
    entry->epoch = epoch;
    if (r.u8()) {
      Pending p;
      p.epoch = r.u64();
      p.digest = r.blob();
      const Bytes nb = r.blob();
      ByteReader nr(nb);
      p.next = Core::deser_sk2(gg_, nr);
      p.reply = r.blob();
      entry->pending = std::move(p);
    }
    if (r.remaining()) entry->rolled_back_digest = r.blob();
    std::unique_lock mlk(map_mu_);
    keys_[id] = std::move(entry);
  }

  [[nodiscard]] crypto::Rng next_rng() {
    std::lock_guard lk(rng_mu_);
    return crypto::Rng(rng_.u64());
  }

  void publish_keys_gauge() const {
    telemetry::Registry::global().gauge("ks.keys").set(static_cast<double>(size()));
  }

  static telemetry::Counter& dec_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("ks.dec.total");
    return c;
  }
  static telemetry::Counter& refreshes_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("ks.refreshes");
    return c;
  }
  static telemetry::Counter& rollbacks_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("ks.rollbacks");
    return c;
  }

  GG gg_;
  schemes::DlrParams prm_;
  std::mutex rng_mu_;
  crypto::Rng rng_;  // master: seeds each entry's party rng
  Options opt_;
  std::unique_ptr<SegmentJournal> journal_;
  mutable std::shared_mutex map_mu_;
  std::unordered_map<KeyId, std::shared_ptr<Entry>, KeyIdHash> keys_;
};

}  // namespace dlr::keystore
