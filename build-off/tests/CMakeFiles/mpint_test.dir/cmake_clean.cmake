file(REMOVE_RECURSE
  "CMakeFiles/mpint_test.dir/mpint_test.cpp.o"
  "CMakeFiles/mpint_test.dir/mpint_test.cpp.o.d"
  "mpint_test"
  "mpint_test.pdb"
  "mpint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
