# Empty dependencies file for dlr_test.
# This may be replaced when dependencies are built.
