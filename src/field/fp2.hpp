// Quadratic extension F_{p^2} = F_p[i]/(i^2 + 1), valid when p == 3 (mod 4).
// This is the target-field arithmetic for the type-A Tate pairing: GT is the
// order-r subgroup of F_{p^2}^*.
#pragma once

#include "field/fp.hpp"

namespace dlr::field {

template <std::size_t L>
struct Fp2E {
  UInt<L> a{};  // real part (Montgomery form)
  UInt<L> b{};  // imaginary part (Montgomery form)
  bool operator==(const Fp2E&) const = default;
};

template <std::size_t L>
class Fp2Ctx {
 public:
  using E = Fp2E<L>;
  using Base = FpCtx<L>;

  explicit Fp2Ctx(const Base& base) : fp_(base) {
    if ((fp_.modulus().limb[0] & 3) != 3)
      throw std::invalid_argument("Fp2Ctx: need p == 3 mod 4 for i^2 = -1");
  }

  [[nodiscard]] const Base& base() const { return fp_; }

  [[nodiscard]] E zero() const { return {}; }
  [[nodiscard]] E one() const { return {fp_.one(), {}}; }
  [[nodiscard]] E from_base(const UInt<L>& re) const { return {re, {}}; }
  [[nodiscard]] E make(const UInt<L>& re, const UInt<L>& im) const { return {re, im}; }

  [[nodiscard]] bool is_zero(const E& x) const { return x.a.is_zero() && x.b.is_zero(); }
  [[nodiscard]] bool eq(const E& x, const E& y) const { return x == y; }

  [[nodiscard]] E add(const E& x, const E& y) const {
    return {fp_.add(x.a, y.a), fp_.add(x.b, y.b)};
  }
  [[nodiscard]] E sub(const E& x, const E& y) const {
    return {fp_.sub(x.a, y.a), fp_.sub(x.b, y.b)};
  }
  [[nodiscard]] E neg(const E& x) const { return {fp_.neg(x.a), fp_.neg(x.b)}; }

  [[nodiscard]] E mul(const E& x, const E& y) const {
    // Karatsuba: ac, bd, (a+b)(c+d).
    const auto ac = fp_.mul(x.a, y.a);
    const auto bd = fp_.mul(x.b, y.b);
    const auto cross = fp_.mul(fp_.add(x.a, x.b), fp_.add(y.a, y.b));
    return {fp_.sub(ac, bd), fp_.sub(cross, fp_.add(ac, bd))};
  }

  [[nodiscard]] E sqr(const E& x) const {
    // (a+bi)^2 = (a+b)(a-b) + 2ab i
    const auto t1 = fp_.mul(fp_.add(x.a, x.b), fp_.sub(x.a, x.b));
    const auto t2 = fp_.mul(x.a, x.b);
    return {t1, fp_.dbl(t2)};
  }

  [[nodiscard]] E conj(const E& x) const { return {x.a, fp_.neg(x.b)}; }

  /// Norm to the base field: a^2 + b^2.
  [[nodiscard]] UInt<L> norm(const E& x) const {
    return fp_.add(fp_.sqr(x.a), fp_.sqr(x.b));
  }

  [[nodiscard]] E inv(const E& x) const {
    const auto n = norm(x);
    const auto ninv = fp_.inv(n);  // throws on zero
    return {fp_.mul(x.a, ninv), fp_.neg(fp_.mul(x.b, ninv))};
  }

  /// Frobenius x^p == conj(x) for p == 3 mod 4.
  [[nodiscard]] E frobenius(const E& x) const { return conj(x); }

  template <std::size_t LE>
  [[nodiscard]] E pow(const E& x, const UInt<LE>& e) const {
    E result = one();
    const std::size_t n = e.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      result = sqr(result);
      if (e.bit(i)) result = mul(result, x);
    }
    return result;
  }

  /// Uniform nonzero element of F_{p^2}^*.
  [[nodiscard]] E random_nonzero(crypto::Rng& rng) const {
    for (;;) {
      const E x{fp_.random(rng), fp_.random(rng)};
      if (!is_zero(x)) return x;
    }
  }

 private:
  Base fp_;
};

}  // namespace dlr::field
