// KeyStore<GG> -- the multi-tenant share fleet behind one shard (DESIGN.md
// §11): (tenant, key-id) -> {DlrParty2 share, epoch machine, pending 2PC
// refresh, leakage budget}.
//
// Each key runs the PR 4 two-phase epoch commit INDEPENDENTLY -- the same
// prepare / commit / hello-reconciliation state machine as P2Server, with
// identical dedup (duplicate prepares resend the journaled reply verbatim;
// duplicate commits ack idempotently by epoch+digest; a rolled-back digest
// is remembered so a stray prepare cannot resurrect it). Where P2Server
// splits its one key across p2_mu_ + pending_mu_ + an EpochCoordinator, a
// keystore entry is small enough for ONE shared_mutex: decryptions hold it
// shared (dec_respond is const), prepare/commit/hello hold it exclusive --
// acquiring the exclusive lock IS the drain barrier, since it waits out
// every in-flight reader of that key and only that key.
//
// Persistence is one SegmentJournal for the whole store: every durable
// transition (put, prepare, commit, rollback) appends that key's full record
//
//   u64 epoch | blob sk2 | u8 has_pending [| u64 pepoch | blob digest
//                                          | blob next_sk2 | blob reply]
//             | blob rolled_back_digest
//
// and recovery is the journal's latest-seq-wins scan. Lock order is
// entry.mu -> journal-internal, never the reverse; the registry map lock
// (map_mu_) nests outside entry locks and is never held across crypto.
//
// Leakage accounting (Definition 3.2, service form): every decryption
// charges leak_per_dec_bits against the key's per-period budget_bits; a
// committed refresh starts a fresh period (spent resets to the carry, here
// 0 since the service leaks nothing during refresh itself). spent/budget
// ride on every ks.dec.ok so the client-side scheduler needs no extra
// round trips. Spent counts are deliberately NOT journaled -- a restart
// conservatively begins a fresh period; the share itself never leaks via
// the journal, which stores exactly what the device already stores.
//
// Telemetry: ks.keys (gauge), ks.recoveries, ks.dec / ks.refreshes /
// ks.rollbacks counters, leak.ks.max_spent_frac + leak.ks.over_threshold
// gauges refreshed by every candidates() sweep, and opt-in per-key
// counters ks.dec{tenant=..,key=..} (Options::per_key_metrics; see the
// cardinality note on telemetry::Labels).
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "keystore/key_id.hpp"
#include "keystore/scheduler.hpp"
#include "keystore/segment_journal.hpp"
#include "schemes/dlr.hpp"
#include "service/protocol.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::keystore {

/// Per-key live-resharding state (DESIGN.md §14). The hand-off is
/// single-writer by construction: a key serves on exactly one shard at any
/// instant, across crashes of either side.
///
///   source:       None -> Marked -> Released -> (tombstone, gone)
///   destination:  (absent) -> Staged -> None (serving)
///
/// Marked keys still decrypt (availability) but refuse every share mutation
/// (prepare/commit/hello -> retryable Draining), freezing the state the
/// offer ships. Released keys answer WrongShard; Staged keys answer
/// Draining until the source's durable release reaches them as a commit.
enum class MigState : std::uint8_t { None = 0, Marked = 1, Staged = 2, Released = 3 };

/// Thrown by a test-installed migration crash hook to simulate a process
/// kill immediately after a durable step. KsServer parks its migration
/// machinery (driver + ks.migrate.* routes) until the process is "restarted"
/// (the object recreated from its state dir), mirroring the compaction
/// crash matrix.
struct MigrationHalt : std::runtime_error {
  using std::runtime_error::runtime_error;
};

template <group::BilinearGroup GG>
class KeyStore {
 private:
  struct Entry;  // defined below; DecSession holds one by shared_ptr

 public:
  using Core = schemes::DlrCore<GG>;
  using ServiceErrc = service::ServiceErrc;
  using ServiceError = service::ServiceError;

  struct Options {
    /// Directory for the segmented journal; empty = volatile.
    std::string state_dir;
    SegmentJournal::Options journal{};
    /// Per-period leakage budget ℓ per key, in bits.
    double budget_bits = 128;
    /// Bits charged against the budget per decryption served.
    double leak_per_dec_bits = 1.0;
    /// Fraction of the budget at which a key becomes a refresh candidate.
    double refresh_threshold = 0.5;
    /// Mint per-key labeled counters (cardinality: one series per key!).
    bool per_key_metrics = false;
  };

  struct DecOut {
    Bytes reply;
    std::uint64_t spent_millibits = 0;
    std::uint64_t budget_millibits = 0;
  };

  KeyStore(GG gg, schemes::DlrParams prm, crypto::Rng rng, Options opt)
      : gg_(std::move(gg)), prm_(prm), rng_(std::move(rng)), opt_(std::move(opt)) {
    if (!opt_.state_dir.empty()) {
      journal_ = std::make_unique<SegmentJournal>(opt_.state_dir, opt_.journal);
      auto recovered = journal_->take_recovered();
      for (auto& [id, state] : recovered) restore_one(id, state);
      if (!recovered.empty()) {
        telemetry::Registry::global().counter("ks.recoveries").add(recovered.size());
        telemetry::event(telemetry::EventKind::JournalRecovery,
                         "side=ks keys=" + std::to_string(recovered.size()));
      }
    }
    publish_keys_gauge();
  }

  KeyStore(const KeyStore&) = delete;
  KeyStore& operator=(const KeyStore&) = delete;

  /// Provision (or re-provision at epoch 0) a key. Journals before the key
  /// becomes servable.
  void put(const KeyId& id, typename Core::Sk2 sk2) {
    auto entry = std::make_shared<Entry>(gg_, prm_, std::move(sk2), next_rng());
    {
      std::unique_lock lk(entry->mu);
      persist_locked(id, *entry);
    }
    {
      std::unique_lock mlk(map_mu_);
      keys_[id] = std::move(entry);
    }
    publish_keys_gauge();
  }

  /// Drop a key (tombstoned in the journal; gone after recovery too).
  void remove(const KeyId& id) {
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock mlk(map_mu_);
      const auto it = keys_.find(id);
      if (it != keys_.end()) {
        entry = it->second;
        keys_.erase(it);
      }
    }
    if (entry) {
      // A concurrent ref_prepare/ref_commit/hello may still hold this entry's
      // shared_ptr. Taking the exclusive lock orders the tombstone after any
      // in-flight mutation's append, and marking the entry removed makes every
      // later persist_locked a no-op -- otherwise a newer-seq record would
      // follow the tombstone and latest-seq-wins recovery would resurrect the
      // key (with its share back on disk).
      std::unique_lock lk(entry->mu);
      entry->removed = true;
      if (journal_) journal_->tombstone(id);
    } else if (journal_) {
      journal_->tombstone(id);
    }
    publish_keys_gauge();
  }

  [[nodiscard]] bool contains(const KeyId& id) const {
    std::shared_lock mlk(map_mu_);
    return keys_.count(id) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock mlk(map_mu_);
    return keys_.size();
  }

  /// DistDec round 2 + budget charge. Shared entry lock; concurrent with
  /// other keys' refreshes and this key's other decryptions.
  [[nodiscard]] DecOut dec(const KeyId& id, std::uint64_t epoch, const Bytes& round1) {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    check_not_removed(id, *e);
    check_mig_decryptable(id, *e);
    if (epoch != e->epoch)
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch,
                         "request epoch " + std::to_string(epoch) + " != " +
                             std::to_string(e->epoch));
    DecOut out;
    try {
      out.reply = e->p2.dec_respond(round1);
    } catch (const std::exception& ex) {
      throw ServiceError(ServiceErrc::BadRequest, e->epoch, ex.what());
    }
    out.spent_millibits = charge_locked(id, *e);
    out.budget_millibits = budget_millibits();
    return out;
  }

  /// Batched decryption against ONE key: holds the entry's shared lock and a
  /// recode-once DlrParty2::DecBatch across many run() calls, so a batch of
  /// requests pays one lock acquisition and one share-vector wNAF recoding
  /// instead of N. run() is dec() per item -- same epoch check, same budget
  /// charge, same typed errors, bit-identical replies. Because the lock is
  /// held for the whole session, a refresh commit (exclusive lock) either
  /// drains before the session starts or waits until it ends: a session never
  /// observes an epoch change mid-batch.
  class DecSession {
   public:
    DecSession(DecSession&&) = default;

    [[nodiscard]] DecOut run(std::uint64_t epoch, const Bytes& round1) {
      if (epoch != e_->epoch)
        throw ServiceError(ServiceErrc::StaleEpoch, e_->epoch,
                           "request epoch " + std::to_string(epoch) + " != " +
                               std::to_string(e_->epoch));
      DecOut out;
      try {
        out.reply = batch_.run(round1);
      } catch (const std::exception& ex) {
        throw ServiceError(ServiceErrc::BadRequest, e_->epoch, ex.what());
      }
      out.spent_millibits = ks_->charge_locked(id_, *e_);
      out.budget_millibits = ks_->budget_millibits();
      return out;
    }

    [[nodiscard]] std::uint64_t epoch() const { return e_->epoch; }

   private:
    friend class KeyStore;
    DecSession(const KeyStore* ks, KeyId id, std::shared_ptr<Entry> e)
        : ks_(ks), id_(std::move(id)), e_(std::move(e)), lk_(e_->mu),
          batch_(e_->p2.dec_batch()) {
      ks_->check_not_removed(id_, *e_);
      ks_->check_mig_decryptable(id_, *e_);
    }

    const KeyStore* ks_;
    KeyId id_;
    std::shared_ptr<Entry> e_;
    std::shared_lock<std::shared_mutex> lk_;
    typename schemes::DlrParty2<GG>::DecBatch batch_;
  };

  /// Open a batched-decryption session for one key. Throws UnknownKey if the
  /// key does not exist (or raced a remove()).
  [[nodiscard]] DecSession dec_session(const KeyId& id) const {
    return DecSession(this, id, find(id));
  }

  /// PREPARE: compute + journal the next share; serving state untouched.
  [[nodiscard]] Bytes ref_prepare(const KeyId& id, std::uint64_t epoch,
                                  const Bytes& round1) {
    auto e = find(id);
    const Bytes digest = crypto::digest_to_bytes(crypto::Sha256::hash(round1));
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    check_mig_mutable(id, *e);
    if (e->pending && e->pending->epoch == epoch && e->pending->digest == digest)
      return e->pending->reply;  // duplicate prepare: resend verbatim
    if (!e->rolled_back_digest.empty() && e->rolled_back_digest == digest)
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch, "refresh was rolled back");
    if (epoch != e->epoch)
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch,
                         "refresh epoch " + std::to_string(epoch) + " != " +
                             std::to_string(e->epoch));
    typename schemes::DlrParty2<GG>::RefPrepared prep;
    try {
      prep = e->p2.ref_prepare(round1);
    } catch (const std::exception& ex) {
      throw ServiceError(ServiceErrc::BadRequest, e->epoch, ex.what());
    }
    const Bytes reply = prep.reply;
    e->pending.emplace();
    e->pending->epoch = epoch;
    e->pending->digest = digest;
    e->pending->next = std::move(prep.next);
    e->pending->reply = std::move(prep.reply);
    persist_locked(id, *e);
    telemetry::event(telemetry::EventKind::EpochPrepare,
                     "key=" + id.display() + " epoch=" + std::to_string(epoch));
    return reply;
  }

  /// COMMIT: install the pending share, persist, bump the epoch, reset the
  /// leakage period. The exclusive lock drains this key's in-flight
  /// decryptions. Duplicate commits ack idempotently.
  std::uint64_t ref_commit(const KeyId& id, std::uint64_t epoch, const Bytes& digest) {
    auto e = find(id);
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    check_mig_mutable(id, *e);
    if (!e->pending || e->pending->epoch != epoch || e->pending->digest != digest) {
      if (e->epoch == epoch + 1) return e->epoch;  // duplicate of installed commit
      throw ServiceError(ServiceErrc::StaleEpoch, e->epoch, "no matching prepared refresh");
    }
    e->p2.ref_install(std::move(e->pending->next));
    e->pending.reset();
    ++e->epoch;
    e->spent_millibits.store(0);  // fresh period, budget restored
    // Persist BEFORE returning the ack: once the client sees commit.ok it
    // installs its own half, so this install must never be forgotten.
    persist_locked(id, *e);
    refreshes_counter().add();
    telemetry::event(telemetry::EventKind::EpochCommit,
                     "key=" + id.display() + " epoch=" + std::to_string(e->epoch));
    return e->epoch;
  }

  /// Reconnect reconciliation for ONE key -- P2Server's verdict table
  /// (Commit iff we installed the client's pending refresh, Rollback if we
  /// never did, fork errors otherwise).
  [[nodiscard]] service::HelloOk hello(const KeyId& id, const service::HelloMsg& h) {
    auto e = find(id);
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    check_mig_mutable(id, *e);
    service::HelloOk ok;
    ok.server_epoch = e->epoch;
    if (h.has_pending) {
      if (e->epoch == h.pending_epoch + 1) {
        ok.disposition = service::RefDisposition::Commit;
      } else if (e->epoch == h.pending_epoch) {
        const bool had_pending = e->pending.has_value();
        e->pending.reset();
        e->rolled_back_digest = h.pending_digest;
        // Persist AFTER recording the digest (and even when we held no
        // pending): the no-resurrect guarantee must survive a crash, since a
        // delayed duplicate of the old prepare can arrive after restart.
        persist_locked(id, *e);
        if (had_pending)
          telemetry::event(telemetry::EventKind::EpochRollback,
                           "key=" + id.display() + " epoch=" + std::to_string(e->epoch));
        rollbacks_counter().add();
        ok.disposition = service::RefDisposition::Rollback;
      } else {
        throw ServiceError(ServiceErrc::Internal, e->epoch,
                           "epoch fork: client pending " + std::to_string(h.pending_epoch) +
                               ", server " + std::to_string(e->epoch));
      }
    } else {
      if (e->pending) {
        e->pending.reset();
        persist_locked(id, *e);
        rollbacks_counter().add();
      }
      if (e->epoch != h.epoch)
        throw ServiceError(ServiceErrc::Internal, e->epoch,
                           "epoch fork: client " + std::to_string(h.epoch) + ", server " +
                               std::to_string(e->epoch));
      ok.disposition = service::RefDisposition::None;
    }
    return ok;
  }

  /// Keys at/above the refresh threshold, for the scheduler's Source. Also
  /// refreshes the aggregate leak.ks.* gauges (this IS the sweep).
  [[nodiscard]] std::vector<RefreshScheduler::Candidate> candidates() const {
    std::vector<RefreshScheduler::Candidate> out;
    double max_frac = 0;
    {
      std::shared_lock mlk(map_mu_);
      for (const auto& [id, e] : keys_) {
        // Mid-migration keys are skipped: the scheduler must not refresh a
        // share whose state is frozen for shipping (or not yet serving).
        if (e->mig.load() != 0) continue;
        const double frac = static_cast<double>(e->spent_millibits.load()) /
                            static_cast<double>(budget_millibits());
        max_frac = std::max(max_frac, frac);
        if (frac >= opt_.refresh_threshold) out.push_back({id, frac});
      }
    }
    auto& reg = telemetry::Registry::global();
    reg.gauge("leak.ks.max_spent_frac").set(max_frac);
    reg.gauge("leak.ks.over_threshold").set(static_cast<double>(out.size()));
    return out;
  }

  [[nodiscard]] std::uint64_t epoch_of(const KeyId& id) const {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    return e->epoch;
  }

  [[nodiscard]] double spent_frac(const KeyId& id) const {
    auto e = find(id);
    return static_cast<double>(e->spent_millibits.load()) /
           static_cast<double>(budget_millibits());
  }

  [[nodiscard]] bool has_pending(const KeyId& id) const {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    return e->pending.has_value();
  }

  /// SHA-256 over every key's (tenant, key, epoch, share), sorted -- the
  /// fleet-wide state fingerprint for crash-recovery verification.
  [[nodiscard]] Bytes digest_all() const {
    std::vector<std::pair<KeyId, Bytes>> rows;
    {
      std::shared_lock mlk(map_mu_);
      rows.reserve(keys_.size());
      for (const auto& [id, e] : keys_) {
        std::shared_lock lk(e->mu);
        ByteWriter w;
        w.str(id.tenant);
        w.str(id.key);
        w.u64(e->epoch);
        Core::ser_sk2(gg_, w, e->p2.share());
        rows.emplace_back(id, w.take());
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    crypto::Sha256 h;
    for (const auto& [id, bytes] : rows) h.update(bytes);
    return crypto::digest_to_bytes(h.finish());
  }

  // ---- live resharding (DESIGN.md §14) ----------------------------------
  //
  // The store owns the durable half of the hand-off: every transition below
  // journals the key's full record (now carrying a migration tail) BEFORE
  // firing the crash hook, so a test that kills the process at any hook
  // recovers to a state the protocol can resume from. KsServer owns the wire
  // half (offer/commit/done) and the retry-forever driver.

  /// One crash hook for every durable migration step ("mig.src_mark",
  /// "mig.src_release", "mig.src_done", "mig.dst_stage", "mig.dst_commit").
  /// Runs with the entry's exclusive lock held; a MigrationHalt thrown here
  /// simulates a kill right after the fsync.
  void set_migration_hook(std::function<void(const char*)> hook) {
    mig_hook_ = std::move(hook);
  }

  struct MigStatus {
    MigState state = MigState::None;
    std::uint64_t map_version = 0;
    std::uint32_t dest = 0;  // destination shard (source side) / origin (dest side)
  };

  struct MigExport {
    Bytes state;   // the key's journal record, sans migration tail
    Bytes digest;  // SHA-256 of state: the idempotency token
    std::uint64_t spent_millibits = 0;
  };

  /// How a request for `id` should be routed, cheap enough for the reader
  /// thread: one registry lookup + two atomics, no entry lock.
  enum class RouteState : std::uint8_t { Absent, Serving, Staged, Released };

  [[nodiscard]] RouteState route_state(const KeyId& id) const {
    std::shared_lock mlk(map_mu_);
    const auto it = keys_.find(id);
    if (it == keys_.end() || it->second->removed.load()) return RouteState::Absent;
    switch (static_cast<MigState>(it->second->mig.load())) {
      case MigState::Staged:
        return RouteState::Staged;
      case MigState::Released:
        return RouteState::Released;
      case MigState::None:
      case MigState::Marked:
        break;
    }
    return RouteState::Serving;
  }

  [[nodiscard]] bool serving(const KeyId& id) const {
    return route_state(id) == RouteState::Serving;
  }

  [[nodiscard]] MigStatus mig_status(const KeyId& id) const {
    std::shared_ptr<Entry> e = find_opt(id);
    if (!e) return {};
    std::shared_lock lk(e->mu);
    return {static_cast<MigState>(e->mig.load()), e->mig_map_version, e->mig_dest};
  }

  /// Every key id resident in the store (serving, staged, or released) --
  /// the proposal scan enumerates these against the new map.
  [[nodiscard]] std::vector<KeyId> key_ids() const {
    std::vector<KeyId> out;
    std::shared_lock mlk(map_mu_);
    out.reserve(keys_.size());
    for (const auto& [id, e] : keys_)
      if (!e->removed.load()) out.push_back(id);
    return out;
  }

  /// Keys with journaled mid-migration state (Marked/Released), for the
  /// driver's crash-restart resume.
  [[nodiscard]] std::vector<std::pair<KeyId, MigStatus>> migrating_keys() const {
    std::vector<std::pair<KeyId, MigStatus>> out;
    std::shared_lock mlk(map_mu_);
    for (const auto& [id, e] : keys_) {
      const auto m = static_cast<MigState>(e->mig.load());
      if (m != MigState::Marked && m != MigState::Released) continue;
      std::shared_lock lk(e->mu);
      out.push_back({id, {m, e->mig_map_version, e->mig_dest}});
    }
    return out;
  }

  /// Source step 1: durably mark the key as migrating to `dest` under
  /// `map_version`. Decryptions keep serving; every share mutation now gets
  /// the retryable Draining, freezing the state the offer will ship (plus
  /// the spent counter, which stays live until release). Idempotent; a
  /// Released key accepts only its own (version, dest) -- release is the
  /// point of no return.
  void mark_migrating(const KeyId& id, std::uint64_t map_version, std::uint32_t dest) {
    auto e = find(id);
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    const auto m = static_cast<MigState>(e->mig.load());
    if (m == MigState::Staged)
      throw ServiceError(ServiceErrc::Internal, e->epoch,
                         "mark_migrating on a staged (incoming) key " + id.display());
    if (m == MigState::Released) {
      if (e->mig_map_version == map_version && e->mig_dest == dest) return;
      throw ServiceError(ServiceErrc::Internal, e->epoch,
                         "re-mark of released key " + id.display() +
                             " with a different destination");
    }
    if (m == MigState::Marked && e->mig_map_version == map_version && e->mig_dest == dest)
      return;
    e->mig.store(static_cast<std::uint8_t>(MigState::Marked));
    e->mig_map_version = map_version;
    e->mig_dest = dest;
    e->mig_spent = e->spent_millibits.load();
    persist_locked(id, *e);
    mig_event("src_mark", id, map_version);
    fire_mig_hook("mig.src_mark");
  }

  /// The map no longer moves this key away: back to plain serving.
  void unmark_migrating(const KeyId& id) {
    auto e = find_opt(id);
    if (!e) return;
    std::unique_lock lk(e->mu);
    if (static_cast<MigState>(e->mig.load()) != MigState::Marked) return;
    e->mig.store(static_cast<std::uint8_t>(MigState::None));
    e->mig_map_version = 0;
    e->mig_dest = 0;
    persist_locked(id, *e);
  }

  /// Serialize the frozen share state for the ks.migrate.offer. Valid while
  /// Marked or Released; the digest doubles as the idempotency token on the
  /// destination.
  [[nodiscard]] MigExport export_migrating(const KeyId& id) const {
    auto e = find(id);
    std::shared_lock lk(e->mu);
    const auto m = static_cast<MigState>(e->mig.load());
    if (m != MigState::Marked && m != MigState::Released)
      throw ServiceError(ServiceErrc::Internal, e->epoch,
                         "export of non-migrating key " + id.display());
    MigExport out;
    out.state = ser_state_locked(*e);
    out.digest = crypto::digest_to_bytes(crypto::Sha256::hash(out.state));
    out.spent_millibits =
        m == MigState::Released ? e->mig_spent : e->spent_millibits.load();
    return out;
  }

  /// Source step 2 (cut-over): stop serving. The exclusive lock IS the drain
  /// barrier -- every in-flight decryption of this key finishes first. The
  /// final spent count is journaled with the record so a crashed source
  /// resends the commit with the exact budget position. Idempotent.
  std::uint64_t release_migrating(const KeyId& id) {
    auto e = find(id);
    std::unique_lock lk(e->mu);
    check_not_removed(id, *e);
    const auto m = static_cast<MigState>(e->mig.load());
    if (m == MigState::Released) return e->mig_spent;
    if (m != MigState::Marked)
      throw ServiceError(ServiceErrc::Internal, e->epoch,
                         "release of unmarked key " + id.display());
    e->mig_spent = e->spent_millibits.load();
    e->mig.store(static_cast<std::uint8_t>(MigState::Released));
    persist_locked(id, *e);
    mig_event("src_release", id, e->mig_map_version);
    fire_mig_hook("mig.src_release");
    return e->mig_spent;
  }

  /// Source step 3: the destination acked the commit -- tombstone and forget.
  /// Requests now fall through to the map check, which names the new owner.
  void finalize_migrated(const KeyId& id) {
    auto e = find_opt(id);
    if (!e) return;  // duplicate finalize after a crash-restart
    {
      std::unique_lock lk(e->mu);
      if (static_cast<MigState>(e->mig.load()) != MigState::Released)
        throw ServiceError(ServiceErrc::Internal, e->epoch,
                           "finalize of unreleased key " + id.display());
      e->removed.store(true);
      if (journal_) journal_->tombstone(id);
    }
    {
      std::unique_lock mlk(map_mu_);
      keys_.erase(id);
    }
    publish_keys_gauge();
    mig_event("src_done", id, 0);
    fire_mig_hook("mig.src_done");
  }

  /// Destination step 1: journal the shipped record as Staged (resident but
  /// not serving -- requests answer Draining until the commit). Returns the
  /// state digest the ack carries. Idempotent by digest: a duplicate offer
  /// re-acks; a conflicting one is an Internal fork (state is frozen at the
  /// source while Marked, so it cannot legitimately differ).
  [[nodiscard]] Bytes stage_incoming(const KeyId& id, std::uint64_t map_version,
                                     std::uint32_t from_shard, const Bytes& state,
                                     std::uint64_t spent_millibits) {
    const Bytes digest = crypto::digest_to_bytes(crypto::Sha256::hash(state));
    if (auto existing = find_opt(id)) {
      std::unique_lock lk(existing->mu);
      if (!existing->removed.load()) {
        const Bytes have =
            crypto::digest_to_bytes(crypto::Sha256::hash(ser_state_locked(*existing)));
        if (have == digest) {
          if (static_cast<MigState>(existing->mig.load()) == MigState::Staged)
            existing->mig_map_version = map_version;
          return digest;  // duplicate offer (staged or already committed)
        }
        throw ServiceError(ServiceErrc::Internal, existing->epoch,
                           "conflicting migration offer for resident key " +
                               id.display());
      }
    }
    ByteReader r(state);
    auto entry = parse_state(r);
    if (r.remaining())
      throw ServiceError(ServiceErrc::BadRequest, 0,
                         "migrated state for " + id.display() + ": trailing bytes");
    entry->mig.store(static_cast<std::uint8_t>(MigState::Staged));
    entry->mig_map_version = map_version;
    entry->mig_dest = from_shard;
    entry->mig_spent = spent_millibits;
    entry->spent_millibits.store(spent_millibits);
    {
      std::unique_lock lk(entry->mu);
      persist_locked(id, *entry);
    }
    {
      std::unique_lock mlk(map_mu_);
      keys_[id] = std::move(entry);
    }
    publish_keys_gauge();
    mig_event("dst_stage", id, map_version);
    fire_mig_hook("mig.dst_stage");
    return digest;
  }

  /// Destination step 2: the source released durably -- start serving. The
  /// commit's spent count (frozen at release) replaces the offer-time
  /// snapshot, so the leakage period continues exactly where the source
  /// stopped charging it. Idempotent: an already-serving key re-acks.
  void commit_incoming(const KeyId& id, const Bytes& digest,
                       std::uint64_t spent_millibits) {
    auto e = find_opt(id);
    if (!e)
      throw ServiceError(ServiceErrc::Internal, 0,
                         "migration commit for unknown key " + id.display());
    std::unique_lock lk(e->mu);
    const auto m = static_cast<MigState>(e->mig.load());
    if (m == MigState::None) return;  // duplicate commit
    if (m != MigState::Staged)
      throw ServiceError(ServiceErrc::Internal, e->epoch,
                         "migration commit for unstaged key " + id.display());
    const Bytes have =
        crypto::digest_to_bytes(crypto::Sha256::hash(ser_state_locked(*e)));
    if (have != digest)
      throw ServiceError(ServiceErrc::Internal, e->epoch,
                         "migration commit digest mismatch for " + id.display());
    e->spent_millibits.store(spent_millibits);
    e->mig_spent = spent_millibits;
    e->mig.store(static_cast<std::uint8_t>(MigState::None));
    e->mig_map_version = 0;
    e->mig_dest = 0;
    persist_locked(id, *e);
    mig_event("dst_commit", id, 0);
    fire_mig_hook("mig.dst_commit");
  }

  /// Compact the journal if it has accumulated enough sealed segments.
  bool maybe_compact() { return journal_ ? journal_->maybe_compact() : false; }

  [[nodiscard]] SegmentJournal* journal() { return journal_.get(); }
  [[nodiscard]] const GG& gg() const { return gg_; }
  [[nodiscard]] const schemes::DlrParams& params() const { return prm_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] double refresh_threshold() const { return opt_.refresh_threshold; }

 private:
  struct Pending {
    std::uint64_t epoch = 0;
    Bytes digest;
    typename Core::Sk2 next;
    Bytes reply;
  };

  struct Entry {
    Entry(const GG& gg, schemes::DlrParams prm, typename Core::Sk2 sk2, crypto::Rng rng)
        : p2(gg, prm, std::move(sk2), std::move(rng)) {}
    mutable std::shared_mutex mu;
    schemes::DlrParty2<GG> p2;
    std::uint64_t epoch = 0;
    std::optional<Pending> pending;
    Bytes rolled_back_digest;
    // Written under exclusive mu; atomic so route_state() can classify a key
    // without touching the entry lock on the reader thread.
    std::atomic<bool> removed{false};
    std::atomic<std::uint8_t> mig{0};  // MigState
    std::uint64_t mig_map_version = 0;  // under mu, valid while mig != None
    std::uint32_t mig_dest = 0;         // under mu: dest shard (src) / origin (dst)
    std::uint64_t mig_spent = 0;        // under mu: spent frozen at mark/release/stage
    std::atomic<std::uint64_t> spent_millibits{0};
  };

  [[nodiscard]] std::shared_ptr<Entry> find(const KeyId& id) const {
    std::shared_lock mlk(map_mu_);
    const auto it = keys_.find(id);
    if (it == keys_.end())
      throw ServiceError(ServiceErrc::UnknownKey, 0, "no key " + id.display());
    return it->second;
  }

  [[nodiscard]] std::shared_ptr<Entry> find_opt(const KeyId& id) const {
    std::shared_lock mlk(map_mu_);
    const auto it = keys_.find(id);
    return it == keys_.end() ? nullptr : it->second;
  }

  /// Caller holds e.mu (either mode; removed is only written under the
  /// exclusive lock). An op that raced remove() must fail typed, not mutate
  /// state the journal will never see again.
  void check_not_removed(const KeyId& id, const Entry& e) const {
    if (e.removed)
      throw ServiceError(ServiceErrc::UnknownKey, 0, "key " + id.display() + " was removed");
  }

  /// Caller holds e.mu (either mode). Decryptions keep flowing while Marked
  /// (availability during the stream) but a Staged copy is not serving yet
  /// and a Released one never serves again -- the WrongShard tells the
  /// client to refetch the (already installed) new map.
  void check_mig_decryptable(const KeyId& id, const Entry& e) const {
    switch (static_cast<MigState>(e.mig.load())) {
      case MigState::None:
      case MigState::Marked:
        return;
      case MigState::Staged:
        throw ServiceError(ServiceErrc::Draining, e.epoch,
                           "key " + id.display() + " is migrating in");
      case MigState::Released:
        throw ServiceError(ServiceErrc::WrongShard, e.epoch,
                           "key " + id.display() + " migrated to shard " +
                               std::to_string(e.mig_dest));
    }
  }

  /// Caller holds e.mu exclusively. ANY migration state freezes the share
  /// mutations (prepare/commit/hello): the offer's digest must stay stable
  /// from mark to commit. Draining is retryable -- the client backs off and
  /// lands on whichever shard owns the key by then.
  void check_mig_mutable(const KeyId& id, const Entry& e) const {
    if (e.mig.load() != 0)
      throw ServiceError(ServiceErrc::Draining, e.epoch,
                         "key " + id.display() + " is migrating");
  }

  [[nodiscard]] std::uint64_t leak_per_dec_millibits() const {
    return static_cast<std::uint64_t>(opt_.leak_per_dec_bits * 1000.0);
  }
  [[nodiscard]] std::uint64_t budget_millibits() const {
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(opt_.budget_bits * 1000.0));
  }

  /// Budget charge + counters for one served decryption. Caller holds e.mu
  /// (shared suffices; the spent counter is atomic). Returns the new spent.
  std::uint64_t charge_locked(const KeyId& id, Entry& e) const {
    const std::uint64_t spent =
        e.spent_millibits.fetch_add(leak_per_dec_millibits()) + leak_per_dec_millibits();
    dec_counter().add();
    if (opt_.per_key_metrics)
      telemetry::Registry::global()
          .counter("ks.dec", {{"tenant", id.tenant}, {"key", id.key}})
          .add();
    return spent;
  }

  /// The key's portable share state -- exactly what PR 7 journaled, and
  /// since PR 10 also what a ks.migrate.offer ships. The migration tail is
  /// NOT part of it: the digest that keys the hand-off's idempotency must
  /// not change as the hand-off itself advances. Caller holds e.mu.
  [[nodiscard]] Bytes ser_state_locked(const Entry& e) const {
    ByteWriter w;
    w.u64(e.epoch);
    ByteWriter sw;
    Core::ser_sk2(gg_, sw, e.p2.share());
    w.blob(sw.bytes());
    w.u8(e.pending ? 1 : 0);
    if (e.pending) {
      w.u64(e.pending->epoch);
      w.blob(e.pending->digest);
      ByteWriter nw;
      Core::ser_sk2(gg_, nw, e.pending->next);
      w.blob(nw.bytes());
      w.blob(e.pending->reply);
    }
    w.blob(e.rolled_back_digest);
    return w.take();
  }

  /// Serialize + append this key's durable record (portable state + the
  /// migration tail). Caller holds e.mu exclusively (constructor-time calls
  /// are unshared). The journal's own mutex orders concurrent appends from
  /// different keys.
  void persist_locked(const KeyId& id, Entry& e) {
    if (!journal_ || e.removed.load()) return;
    ByteWriter w;
    w.raw(ser_state_locked(e));
    const auto m = static_cast<MigState>(e.mig.load());
    w.u8(static_cast<std::uint8_t>(m));
    if (m != MigState::None) {
      w.u64(e.mig_map_version);
      w.u32(e.mig_dest);
      w.u64(e.mig_spent);
    }
    journal_->append(id, w.take());
  }

  /// Parse the portable state into a fresh entry; leaves `r` positioned at
  /// the migration tail (records) or the end (shipped offers).
  [[nodiscard]] std::shared_ptr<Entry> parse_state(ByteReader& r) {
    const std::uint64_t epoch = r.u64();
    const Bytes sk2b = r.blob();
    ByteReader sr(sk2b);
    auto entry = std::make_shared<Entry>(gg_, prm_, Core::deser_sk2(gg_, sr), next_rng());
    entry->epoch = epoch;
    if (r.u8()) {
      Pending p;
      p.epoch = r.u64();
      p.digest = r.blob();
      const Bytes nb = r.blob();
      ByteReader nr(nb);
      p.next = Core::deser_sk2(gg_, nr);
      p.reply = r.blob();
      entry->pending = std::move(p);
    }
    if (r.remaining()) entry->rolled_back_digest = r.blob();
    return entry;
  }

  void restore_one(const KeyId& id, const Bytes& state) {
    ByteReader r(state);
    auto entry = parse_state(r);
    if (r.remaining()) {
      const auto m = static_cast<MigState>(r.u8());
      entry->mig.store(static_cast<std::uint8_t>(m));
      if (m != MigState::None) {
        entry->mig_map_version = r.u64();
        entry->mig_dest = r.u32();
        entry->mig_spent = r.u64();
        // A mid-migration key restarts with its journaled budget position
        // (a lower bound for Marked keys) instead of the usual fresh
        // period: the position must survive the hand-off.
        entry->spent_millibits.store(entry->mig_spent);
      }
    }
    std::unique_lock mlk(map_mu_);
    keys_[id] = std::move(entry);
  }

  void fire_mig_hook(const char* step) {
    if (mig_hook_) mig_hook_(step);
  }

  static void mig_event(const char* step, const KeyId& id, std::uint64_t map_version) {
    telemetry::event(telemetry::EventKind::Migrate,
                     std::string("step=") + step + " key=" + id.display() +
                         (map_version ? " map_v=" + std::to_string(map_version) : ""));
  }

  [[nodiscard]] crypto::Rng next_rng() {
    std::lock_guard lk(rng_mu_);
    return crypto::Rng(rng_.u64());
  }

  void publish_keys_gauge() const {
    telemetry::Registry::global().gauge("ks.keys").set(static_cast<double>(size()));
  }

  static telemetry::Counter& dec_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("ks.dec.total");
    return c;
  }
  static telemetry::Counter& refreshes_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("ks.refreshes");
    return c;
  }
  static telemetry::Counter& rollbacks_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("ks.rollbacks");
    return c;
  }

  GG gg_;
  schemes::DlrParams prm_;
  std::mutex rng_mu_;
  crypto::Rng rng_;  // master: seeds each entry's party rng
  Options opt_;
  std::function<void(const char*)> mig_hook_;  // test-only crash injection
  std::unique_ptr<SegmentJournal> journal_;
  mutable std::shared_mutex map_mu_;
  std::unordered_map<KeyId, std::shared_ptr<Entry>, KeyIdHash> keys_;
};

}  // namespace dlr::keystore
