// Montgomery-form prime fields of fixed limb width.
//
// FpCtx<L> is a runtime context (modulus-dependent constants); field elements
// are plain UInt<L> values *in Montgomery form*. Keeping elements as raw
// UInts keeps the types trivially copyable/serializable; correctness of form
// is the caller's responsibility, which in this library is always a group or
// pairing context that owns the FpCtx.
#pragma once

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "crypto/rng.hpp"
#include "mpint/uint.hpp"

namespace dlr::field {

using mpint::UInt;

template <std::size_t L>
class FpCtx {
 public:
  using E = UInt<L>;  // element, Montgomery form

  explicit FpCtx(const UInt<L>& modulus) : mod_(modulus) {
    if (!modulus.is_odd() || modulus.bit_length() < 3)
      throw std::invalid_argument("FpCtx: modulus must be odd and > 4");
    // n0inv = -mod^{-1} mod 2^64 (Newton iteration over 2-adics).
    std::uint64_t inv = 1;
    for (int i = 0; i < 6; ++i) inv *= 2 - mod_.limb[0] * inv;
    n0inv_ = ~inv + 1;  // negate

    // one_ = R mod m. 2^(64L) lives at bit 64L of a UInt<L+1>.
    UInt<L + 1> r{};
    r.limb[L] = 1;
    one_ = mpint::mod(r, mod_);
    // r2_ = R^2 mod m.
    r2_ = mpint::mod(mpint::mul_wide(one_, one_), mod_);
    two_inv_ = inv_(from_uint(UInt<L>::from_u64(2)));
  }

  [[nodiscard]] const UInt<L>& modulus() const { return mod_; }
  [[nodiscard]] std::size_t bits() const { return mod_.bit_length(); }

  [[nodiscard]] E zero() const { return E{}; }
  [[nodiscard]] E one() const { return one_; }
  [[nodiscard]] E two_inv() const { return two_inv_; }

  [[nodiscard]] E from_uint(const UInt<L>& a) const {
    return mont_mul(mpint::mod(mpint::resize<2 * L>(a), mod_), r2_);
  }

  [[nodiscard]] UInt<L> to_uint(const E& a) const {
    // Multiply by 1 (non-Montgomery) to divide out R.
    UInt<L> one_raw{};
    one_raw.limb[0] = 1;
    return mont_mul(a, one_raw);
  }

  [[nodiscard]] E add(const E& a, const E& b) const {
    E r;
    const std::uint64_t carry = mpint::add(r, a, b);
    if (carry != 0 || r >= mod_) {
      E t;
      mpint::sub(t, r, mod_);
      return t;
    }
    return r;
  }

  [[nodiscard]] E sub(const E& a, const E& b) const {
    E r;
    if (mpint::sub(r, a, b) != 0) {
      E t;
      mpint::add(t, r, mod_);
      return t;
    }
    return r;
  }

  [[nodiscard]] E neg(const E& a) const { return a.is_zero() ? a : sub(zero(), a); }

  [[nodiscard]] E dbl(const E& a) const { return add(a, a); }

  [[nodiscard]] E mul(const E& a, const E& b) const { return mont_mul(a, b); }
  [[nodiscard]] E sqr(const E& a) const { return mont_mul(a, a); }

  [[nodiscard]] bool is_zero(const E& a) const { return a.is_zero(); }
  [[nodiscard]] bool eq(const E& a, const E& b) const { return a == b; }

  template <std::size_t LE>
  [[nodiscard]] E pow(const E& a, const UInt<LE>& e) const {
    E result = one_;
    const std::size_t n = e.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      result = sqr(result);
      if (e.bit(i)) result = mul(result, a);
    }
    return result;
  }

  /// Multiplicative inverse via Fermat (modulus is prime). Throws on zero.
  [[nodiscard]] E inv(const E& a) const {
    if (a.is_zero()) throw std::domain_error("FpCtx::inv: zero");
    return inv_(a);
  }

  /// Montgomery simultaneous inversion: replaces each xs[i] with xs[i]^{-1}
  /// using one Fermat inversion plus 3(n-1) multiplications. A Fermat
  /// inversion costs ~1.5*bits(p) multiplications, so sharing it across a
  /// batch is the enabler for batch-affine table normalization and the
  /// one-inversion-per-batch final exponentiation. Throws on any zero input.
  void batch_inv(std::span<E> xs) const {
    if (xs.empty()) return;
    // prefix[i] = xs[0] * ... * xs[i-1]
    std::vector<E> prefix(xs.size());
    E acc = one_;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (xs[i].is_zero()) throw std::domain_error("FpCtx::batch_inv: zero");
      prefix[i] = acc;
      acc = mul(acc, xs[i]);
    }
    E inv_acc = inv_(acc);  // (prod xs)^{-1}
    for (std::size_t i = xs.size(); i-- > 0;) {
      const E xi_inv = mul(inv_acc, prefix[i]);
      inv_acc = mul(inv_acc, xs[i]);
      xs[i] = xi_inv;
    }
  }

  /// Legendre symbol == 1 (a must be nonzero).
  [[nodiscard]] bool is_square(const E& a) const {
    const UInt<L> e = mpint::shr(mod_ - UInt<L>::from_u64(1), 1);  // (p-1)/2
    return eq(pow(a, e), one_);
  }

  /// Square root for p == 3 (mod 4): a^((p+1)/4). Returns nullopt if a is a
  /// non-residue. Zero maps to zero.
  [[nodiscard]] std::optional<E> sqrt(const E& a) const {
    if (a.is_zero()) return a;
    if ((mod_.limb[0] & 3) != 3)
      throw std::logic_error("FpCtx::sqrt: only implemented for p == 3 mod 4");
    const UInt<L> e = mpint::shr(mod_ + UInt<L>::from_u64(1), 2);  // (p+1)/4
    const E r = pow(a, e);
    if (!eq(sqr(r), a)) return std::nullopt;
    return r;
  }

  /// Uniform element of [0, p), already in Montgomery form.
  [[nodiscard]] E random(crypto::Rng& rng) const {
    return from_uint(random_uint(rng));
  }

  /// Uniform raw integer in [0, p) by rejection sampling.
  [[nodiscard]] UInt<L> random_uint(crypto::Rng& rng) const {
    const std::size_t nbits = mod_.bit_length();
    const std::size_t nbytes = (nbits + 7) / 8;
    for (;;) {
      Bytes b(8 * L, 0);
      rng.fill(std::span<std::uint8_t>(b.data(), nbytes));
      // Mask excess top bits to reduce rejection probability below 1/2.
      const std::size_t excess = 8 * nbytes - nbits;
      if (excess != 0) b[nbytes - 1] &= static_cast<std::uint8_t>(0xff >> excess);
      const auto v = UInt<L>::from_bytes(b);
      if (v < mod_) return v;
    }
  }

 private:
  [[nodiscard]] E inv_(const E& a) const {
    const UInt<L> e = mod_ - UInt<L>::from_u64(2);
    return pow(a, e);
  }

  /// CIOS Montgomery multiplication: returns a*b*R^{-1} mod m
  /// (Acar's Coarsely Integrated Operand Scanning).
  [[nodiscard]] E mont_mul(const E& a, const E& b) const {
    std::uint64_t t[L + 2] = {0};
    for (std::size_t i = 0; i < L; ++i) {
      // t += a[i] * b
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < L; ++j) {
        const unsigned __int128 acc = static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                                      t[j] + carry;
        t[j] = static_cast<std::uint64_t>(acc);
        carry = static_cast<std::uint64_t>(acc >> 64);
      }
      {
        const unsigned __int128 acc = static_cast<unsigned __int128>(t[L]) + carry;
        t[L] = static_cast<std::uint64_t>(acc);
        t[L + 1] = static_cast<std::uint64_t>(acc >> 64);
      }
      // Reduce one limb: t += m*mod, divide by 2^64.
      const std::uint64_t m = t[0] * n0inv_;
      {
        const unsigned __int128 acc = static_cast<unsigned __int128>(m) * mod_.limb[0] + t[0];
        carry = static_cast<std::uint64_t>(acc >> 64);  // low 64 bits are zero
      }
      for (std::size_t j = 1; j < L; ++j) {
        const unsigned __int128 acc = static_cast<unsigned __int128>(m) * mod_.limb[j] +
                                      t[j] + carry;
        t[j - 1] = static_cast<std::uint64_t>(acc);
        carry = static_cast<std::uint64_t>(acc >> 64);
      }
      {
        const unsigned __int128 acc = static_cast<unsigned __int128>(t[L]) + carry;
        t[L - 1] = static_cast<std::uint64_t>(acc);
        t[L] = t[L + 1] + static_cast<std::uint64_t>(acc >> 64);
      }
      t[L + 1] = 0;
    }
    E r;
    for (std::size_t j = 0; j < L; ++j) r.limb[j] = t[j];
    if (t[L] != 0 || r >= mod_) {
      E s;
      mpint::sub(s, r, mod_);
      return s;
    }
    return r;
  }

  UInt<L> mod_;
  std::uint64_t n0inv_ = 0;
  E one_{};
  E r2_{};
  E two_inv_{};
};

}  // namespace dlr::field
