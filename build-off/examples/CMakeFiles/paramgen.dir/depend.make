# Empty dependencies file for paramgen.
# This may be replaced when dependencies are built.
