# Empty dependencies file for ibe_test.
# This may be replaced when dependencies are built.
