// T3: decryption-service throughput -- requests/sec of the multi-threaded
// P2Server (src/service/) over real loopback TCP, swept across worker-pool
// sizes and concurrent-client counts.
//
// The backend is the mock group with a large leakage parameter, so each
// DistDec round 2 is ~ell HPSKE ciphertext exponentiations: enough work per
// request for the worker pool to matter, cheap enough to sweep in seconds.
// Every request is a real network round trip (frame codec + CRC + session
// mux), so the numbers include the full transport stack, not just the crypto.
//
// On a single-core host the worker sweep measures coordination overhead
// rather than speedup -- rows report, they do not assert; bench gauges
// bench.rps{workers=..,clients=..} land in the --json export.
//
// With --faults the bench switches to the robustness workload: every client
// connection runs behind a seeded transport::FaultInjector
// (drop/duplicate/delay/bit-flip/sever at fixed rates) while refreshes fire,
// and the run reports recovery latency -- the wall time of each decrypt()
// that survived at least one reconnect -- as bench.recovery.* gauges next to
// the degraded throughput. BENCH_robustness_baseline.json is the committed
// --faults --json output.
//
// With --scrape the full-load (workers=4, clients=8) point reruns with the
// admin endpoint live and a scraper thread polling adm.metrics throughout;
// the final scraped svc.* series and the measured scrape overhead (scraped
// vs. unscraped req/s of the same point, < 1% target) fold into the --json
// export as bench.scrape.* gauges.
//
// With --overload the bench becomes an open-loop offered-load sweep against
// a deliberately throttled server (2 workers, 1-item batches, an injected
// 1.5 ms crypto delay, an 8-slot queue): closed-loop capacity is measured
// first, then 0.5x/1x/2x that rate is OFFERED on a fixed schedule regardless
// of responses. Accepted requests report goodput + tail latency; rejected
// ones must carry the typed retryable Overloaded error with a nonzero
// retry-after hint (bench.overload.* gauges; any untyped rejection counts in
// bench.overload.shed_untyped, target 0). BENCH_overload_baseline.json is
// the committed --overload --json output.
//
//   bench_t3_service_throughput [--requests N] [--lambda L] [--json out.jsonl]
//                               [--faults] [--seed S] [--scrape]
//                               [--overload] [--duration SECS]
#include <algorithm>
#include <atomic>
#include <cstring>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "group/mock_group.hpp"
#include "service/admin.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"
#include "telemetry/export.hpp"
#include "transport/fault.hpp"

namespace {

using namespace dlr;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

struct Config {
  int requests = 200;     // total per sweep point, split across clients
  std::size_t lambda = 2048;
  std::uint64_t seed = 1;  // --seed: offsets every rng + workload shuffle
};

int int_flag(int argc, char** argv, const char* name, int def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  return def;
}

struct Fixture {
  MockGroup gg = group::make_mock();
  schemes::DlrParams prm;
  Core::KeyGenResult kg;
  std::shared_ptr<service::P1Runtime<MockGroup>> p1;
  // Comb tables for pk.g / pk.Z, built once; every sweep point encrypts
  // hundreds of ciphertexts against the same pk.
  std::unique_ptr<Core::PkTable> pk_tbl;

  std::uint64_t seed;

  explicit Fixture(std::size_t lambda, std::uint64_t seed_ = 1) : seed(seed_) {
    prm = schemes::DlrParams::derive(gg.scalar_bits(), lambda);
    crypto::Rng rng(424242 + seed);
    kg = Core::gen(gg, prm, rng);
    pk_tbl = std::make_unique<Core::PkTable>(gg, kg.pk);
    p1 = std::make_shared<service::P1Runtime<MockGroup>>(
        gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain, crypto::Rng(seed * 2 + 1));
  }
};

/// What the scraper thread saw while the point ran (last/extreme values of
/// the polled svc.* series plus how many scrapes landed).
struct ScrapeStats {
  std::uint64_t scrapes = 0;
  std::map<std::string, double> last_svc;  // final value of each svc_* sample
  double max_inflight = 0;
  double max_queue_depth = 0;
};

/// One sweep point: W workers, C clients, `requests` total decryptions.
/// Returns requests/sec of the whole run (wall clock, all clients). With
/// `scrape` non-null the admin endpoint is live and polled for the whole
/// timed region -- the observability tax the --scrape mode measures.
double run_point(Fixture& fx, int workers, int clients, int requests,
                 ScrapeStats* scrape = nullptr, bool pipeline = true) {
  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = workers;
  sopt.admin = scrape != nullptr;
  sopt.pipeline = pipeline;
  service::P2Server<MockGroup> server(fx.gg, fx.prm, fx.kg.sk2,
                                      crypto::Rng(fx.seed * 2 + 2), sopt);
  server.start();

  std::atomic<bool> scraping{scrape != nullptr};
  std::thread scraper;
  if (scrape) {
    const auto port = server.admin_port();
    scraper = std::thread([&, port] {
      while (scraping.load()) {
        try {
          const auto samples = telemetry::parse_prometheus(
              service::AdminClient::fetch(port, service::kAdmMetrics));
          ++scrape->scrapes;
          for (const auto& [name, v] : samples) {
            if (name.rfind("svc_", 0) != 0) continue;
            scrape->last_svc[name] = v;
            if (name == "svc_inflight")
              scrape->max_inflight = std::max(scrape->max_inflight, v);
            if (name == "svc_queue_depth")
              scrape->max_queue_depth = std::max(scrape->max_queue_depth, v);
          }
        } catch (const std::exception&) {
          // Server tearing down mid-fetch at the end of the point; harmless.
        }
        // 40 scrapes/s -- orders of magnitude hotter than a production
        // Prometheus cadence (15s), while keeping the tax measurable.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  // Pre-encrypt outside the timed region; every client thread gets its own
  // connection (DecryptionClient) and its own slice of the work.
  const int per_client = (requests + clients - 1) / clients;
  crypto::Rng rng(5000 + workers * 100 + clients + fx.seed * 10000);
  std::vector<typename Core::Ciphertext> cts;
  cts.reserve(per_client);
  for (int i = 0; i < per_client; ++i)
    cts.push_back(Core::enc_precomp(fx.gg, *fx.pk_tbl, fx.gg.gt_random(rng), rng));
  bench::seeded_shuffle(cts, fx.seed);  // --seed replays the same request order

  std::vector<std::unique_ptr<service::DecryptionClient<MockGroup>>> conns;
  conns.reserve(clients);
  for (int c = 0; c < clients; ++c)
    conns.push_back(std::make_unique<service::DecryptionClient<MockGroup>>(
        fx.p1, server.port()));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  ts.reserve(clients);
  for (int c = 0; c < clients; ++c)
    ts.emplace_back([&, c] {
      for (const auto& ct : cts) bench::sink(conns[static_cast<std::size_t>(c)]->decrypt(ct));
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  scraping.store(false);
  if (scraper.joinable()) scraper.join();
  for (auto& c : conns) c->close();
  server.stop();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double total = static_cast<double>(per_client) * clients;
  return total / secs;
}

struct FaultRun {
  double rps = 0;
  int ok = 0, failed = 0;
  std::uint64_t injected = 0;    // faults the injectors actually fired
  std::uint64_t reconnects = 0;  // client reconnect count across the run
  std::vector<double> recovery_ms;  // latency of decrypts that reconnected
};

/// Robustness point: `clients` faulted connections decrypt while refreshes
/// fire every few requests. A decrypt whose client reconnected during the
/// call is a "recovery"; its wall time is the recovery latency.
FaultRun run_faults(Fixture& fx, std::uint64_t seed, int clients, int requests) {
  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = 4;
  service::P2Server<MockGroup> server(fx.gg, fx.prm, fx.kg.sk2, crypto::Rng(seed * 2 + 2),
                                      sopt);
  server.start();

  const int per_client = (requests + clients - 1) / clients;
  crypto::Rng rng(6000 + seed);
  std::vector<typename Core::Ciphertext> cts;
  cts.reserve(per_client);
  for (int i = 0; i < per_client; ++i)
    cts.push_back(Core::enc_precomp(fx.gg, *fx.pk_tbl, fx.gg.gt_random(rng), rng));

  std::mutex inj_mu;
  std::vector<std::shared_ptr<transport::FaultInjector>> injectors;
  std::atomic<std::uint64_t> conn_no{0};
  typename service::DecryptionClient<MockGroup>::Options copt;
  copt.request_timeout = transport::Millis{500};
  copt.max_retries = 40;
  copt.retry.base = transport::Millis{2};
  copt.retry.cap = transport::Millis{40};
  copt.auto_refresh_every = 16;
  copt.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    transport::FaultPlan::Rates rates;
    rates.drop = 0.01;
    rates.duplicate = 0.02;
    rates.delay = 0.05;
    rates.bitflip = 0.01;
    rates.sever = 0.01;
    rates.delay_ms = 1;
    auto inj = std::make_shared<transport::FaultInjector>(
        std::move(fc),
        transport::FaultPlan::seeded(seed * 1000003 + conn_no.fetch_add(1), rates));
    std::lock_guard lock(inj_mu);
    injectors.push_back(inj);
    return inj;
  };

  std::vector<std::unique_ptr<service::DecryptionClient<MockGroup>>> conns;
  conns.reserve(clients);
  for (int c = 0; c < clients; ++c)
    conns.push_back(std::make_unique<service::DecryptionClient<MockGroup>>(
        fx.p1, server.port(), copt));

  FaultRun out;
  std::mutex out_mu;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  ts.reserve(clients);
  for (int c = 0; c < clients; ++c)
    ts.emplace_back([&, c] {
      auto& conn = *conns[static_cast<std::size_t>(c)];
      int ok = 0, failed = 0;
      std::vector<double> rec;
      for (const auto& ct : cts) {
        const auto r0 = conn.reconnects();
        const auto d0 = std::chrono::steady_clock::now();
        try {
          bench::sink(conn.decrypt(ct));
          ++ok;
        } catch (const std::exception&) {
          ++failed;  // retry budget exhausted under sustained faults
        }
        if (conn.reconnects() > r0)
          rec.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - d0)
                            .count());
      }
      std::lock_guard lock(out_mu);
      out.ok += ok;
      out.failed += failed;
      out.recovery_ms.insert(out.recovery_ms.end(), rec.begin(), rec.end());
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  for (auto& c : conns) {
    out.reconnects += c->reconnects();
    c->close();
  }
  server.stop();
  {
    std::lock_guard lock(inj_mu);
    for (const auto& inj : injectors) out.injected += inj->injected();
  }
  out.rps = out.ok / std::chrono::duration<double>(t1 - t0).count();
  std::sort(out.recovery_ms.begin(), out.recovery_ms.end());
  return out;
}


// ---- open-loop overload sweep (--overload, DESIGN.md §13) ---------------------

/// The throttled server every overload point runs against: capacity is set
/// by the injected per-item delay (2 workers x 1.5 ms), so the sweep's
/// x-axis is stable across hosts, and the 8-slot queue bounds the latency
/// an accepted request can absorb before shedding starts.
typename service::P2Server<MockGroup>::Options overload_server_options() {
  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = 2;
  sopt.max_batch = 1;
  sopt.queue_cap = 8;
  sopt.inject_crypto_delay = std::chrono::microseconds{1500};
  return sopt;
}

/// Closed-loop ceiling of the throttled config: 8 clients, each re-sending
/// the moment its reply lands. This is the "capacity" the offered-load
/// multipliers scale from.
double overload_capacity(Fixture& fx, int requests) {
  service::P2Server<MockGroup> server(fx.gg, fx.prm, fx.kg.sk2,
                                      crypto::Rng(fx.seed * 2 + 2),
                                      overload_server_options());
  server.start();
  crypto::Rng rng(8100 + fx.seed);
  const auto ct = Core::enc_precomp(fx.gg, *fx.pk_tbl, fx.gg.gt_random(rng), rng);
  const Bytes body = service::encode_request(0, fx.p1->begin_decrypt(ct, rng).round1);

  constexpr int kClients = 8;
  const int per_client = (requests + kClients - 1) / kClients;
  std::atomic<int> ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int c = 0; c < kClients; ++c)
    ts.emplace_back([&] {
      transport::SessionMux mux(std::make_shared<transport::FramedConn>(
          transport::connect_loopback(server.port()), transport::TransportOptions{}));
      for (int i = 0; i < per_client; ++i) {
        auto sess = mux.open();
        sess->send(transport::FrameType::Data, 1, service::kLabelDecReq, body);
        if (sess->recv(transport::Millis{10000}).type == transport::FrameType::Data)
          ok.fetch_add(1);
      }
    });
  for (auto& t : ts) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();
  return ok.load() / secs;
}

struct OverloadStats {
  double offered_target = 0;  // the schedule's rate
  double offered_actual = 0;  // what the senders actually managed
  double goodput = 0;         // accepted replies / wall second
  std::uint64_t sent = 0, ok = 0, shed = 0, deadline_exceeded = 0;
  std::uint64_t other_err = 0, untyped = 0, lost = 0;
  std::vector<double> ok_ms;    // accepted-request latency, sorted
  std::vector<double> hint_ms;  // server retry-after hints, sorted
};

/// One open-loop point: OFFER `offered_rps` requests/sec for `seconds`,
/// on a fixed absolute schedule, regardless of how the server answers.
/// 4 sender threads pace the sends; a receiver per sender drains replies so
/// a slow response never blocks the schedule.
OverloadStats run_overload_point(Fixture& fx, double offered_rps, double seconds) {
  service::P2Server<MockGroup> server(fx.gg, fx.prm, fx.kg.sk2,
                                      crypto::Rng(fx.seed * 2 + 2),
                                      overload_server_options());
  server.start();
  crypto::Rng rng(8200 + fx.seed);
  const auto ct = Core::enc_precomp(fx.gg, *fx.pk_tbl, fx.gg.gt_random(rng), rng);
  const Bytes body = service::encode_request(0, fx.p1->begin_decrypt(ct, rng).round1);

  constexpr int kSenders = 4;
  const auto n_total =
      std::max<long long>(kSenders, static_cast<long long>(offered_rps * seconds));
  OverloadStats agg;
  agg.offered_target = offered_rps;
  std::mutex agg_mu;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  for (int k = 0; k < kSenders; ++k)
    senders.emplace_back([&, k] {
      using Clock = std::chrono::steady_clock;
      OverloadStats local;
      transport::SessionMux mux(std::make_shared<transport::FramedConn>(
          transport::connect_loopback(server.port()), transport::TransportOptions{}));

      std::mutex mu;
      std::condition_variable cv;
      std::deque<std::pair<std::unique_ptr<transport::SessionMux::Session>,
                           Clock::time_point>>
          inflight;
      bool done = false;
      std::thread receiver([&] {
        for (;;) {
          std::unique_lock lk(mu);
          cv.wait(lk, [&] { return done || !inflight.empty(); });
          if (inflight.empty()) return;  // done and drained
          auto [sess, sent_at] = std::move(inflight.front());
          inflight.pop_front();
          lk.unlock();
          try {
            const auto f = sess->recv(transport::Millis{10000});
            const double ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - sent_at)
                                  .count();
            if (f.type == transport::FrameType::Data) {
              ++local.ok;
              local.ok_ms.push_back(ms);
            } else {
              const service::ServiceError e = service::decode_error(f.body);
              if (e.code() == service::ServiceErrc::Overloaded) {
                ++local.shed;
                if (e.retry_after_ms() > 0)
                  local.hint_ms.push_back(static_cast<double>(e.retry_after_ms()));
                else
                  ++local.untyped;
              } else if (e.code() == service::ServiceErrc::DeadlineExceeded) {
                ++local.deadline_exceeded;
              } else {
                ++local.other_err;
              }
            }
          } catch (const std::exception&) {
            ++local.lost;
          }
        }
      });

      try {
        for (long long i = k; i < n_total; i += kSenders) {
          // Absolute schedule: a request that falls behind is sent
          // immediately, never skipped -- the offered load is the contract.
          const auto due =
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(static_cast<double>(i) /
                                                     offered_rps));
          std::this_thread::sleep_until(due);
          auto sess = mux.open();
          sess->send(transport::FrameType::Data, 1, service::kLabelDecReq, body);
          ++local.sent;
          {
            std::lock_guard lk(mu);
            inflight.emplace_back(std::move(sess), Clock::now());
          }
          cv.notify_one();
        }
      } catch (const std::exception&) {
        // Connection died mid-schedule; the remaining sends are lost offers.
      }
      {
        std::lock_guard lk(mu);
        done = true;
      }
      cv.notify_one();
      receiver.join();

      std::lock_guard lk(agg_mu);
      agg.sent += local.sent;
      agg.ok += local.ok;
      agg.shed += local.shed;
      agg.deadline_exceeded += local.deadline_exceeded;
      agg.other_err += local.other_err;
      agg.untyped += local.untyped;
      agg.lost += local.lost;
      agg.ok_ms.insert(agg.ok_ms.end(), local.ok_ms.begin(), local.ok_ms.end());
      agg.hint_ms.insert(agg.hint_ms.end(), local.hint_ms.begin(),
                         local.hint_ms.end());
    });
  for (auto& t : senders) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();

  agg.offered_actual = static_cast<double>(agg.sent) / secs;
  agg.goodput = static_cast<double>(agg.ok) / secs;
  std::sort(agg.ok_ms.begin(), agg.ok_ms.end());
  std::sort(agg.hint_ms.begin(), agg.hint_ms.end());
  return agg;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

struct LatencyStats {
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double rps = 0;
};

/// Single-client closed-loop latency: one connection, sequential decrypts,
/// per-request wall times. With pipeline=true each lone request rides the
/// batch path and pays at most one batch_wait of lingering (the idle-server
/// fast path hands it to a crypto worker as soon as the deadline math runs);
/// pipeline=false is the unbatched PR 2 control the 1.5x p95 budget in
/// ISSUE.md is measured against.
LatencyStats run_latency(Fixture& fx, bool pipeline, int requests) {
  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = 4;
  sopt.pipeline = pipeline;
  service::P2Server<MockGroup> server(fx.gg, fx.prm, fx.kg.sk2,
                                      crypto::Rng(fx.seed * 2 + 2), sopt);
  server.start();

  crypto::Rng rng(7000 + fx.seed);
  std::vector<typename Core::Ciphertext> cts;
  cts.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i)
    cts.push_back(Core::enc_precomp(fx.gg, *fx.pk_tbl, fx.gg.gt_random(rng), rng));

  service::DecryptionClient<MockGroup> conn(fx.p1, server.port());
  std::vector<double> ms;
  ms.reserve(cts.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& ct : cts) {
    const auto d0 = std::chrono::steady_clock::now();
    bench::sink(conn.decrypt(ct));
    ms.push_back(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - d0)
                     .count());
  }
  const auto t1 = std::chrono::steady_clock::now();
  conn.close();
  server.stop();

  std::sort(ms.begin(), ms.end());
  LatencyStats out;
  out.p50_ms = percentile(ms, 0.50);
  out.p95_ms = percentile(ms, 0.95);
  out.p99_ms = percentile(ms, 0.99);
  out.rps = static_cast<double>(requests) / std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.requests = int_flag(argc, argv, "--requests", cfg.requests);
  cfg.lambda = static_cast<std::size_t>(
      int_flag(argc, argv, "--lambda", static_cast<int>(cfg.lambda)));
  cfg.seed = bench::u64_flag(argc, argv, "--seed", cfg.seed);
  bool faults = false, scrape = false, overload = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) faults = true;
    if (std::strcmp(argv[i], "--scrape") == 0) scrape = true;
    if (std::strcmp(argv[i], "--overload") == 0) overload = true;
  }
  const double duration = int_flag(argc, argv, "--duration", 2);

  if (overload) {
    Fixture fx(cfg.lambda, cfg.seed);
    bench::banner("T3: open-loop overload sweep (offered load vs goodput)",
                  "typed load shedding + deadline propagation, DESIGN.md §13");
    const double capacity = overload_capacity(fx, cfg.requests);
    std::printf(
        "backend=mock  lambda=%zu  seed=%llu  throttled capacity=%.0f req/s  "
        "duration/point=%.0fs\n\n",
        cfg.lambda, static_cast<unsigned long long>(cfg.seed), capacity, duration);

    auto& reg = telemetry::Registry::global();
    reg.gauge("bench.overload.capacity_rps").set(capacity);
    bench::Table table({"offered", "sent/s", "goodput/s", "ok", "shed", "lost",
                        "p50 ms", "p99 ms", "hint p50 ms"});
    double goodput_2x = 0, p99_2x = 0, p99_half = 0;
    std::uint64_t untyped_total = 0;
    for (const double mult : {0.5, 1.0, 2.0}) {
      const OverloadStats st = run_overload_point(fx, capacity * mult, duration);
      const double p50 = percentile(st.ok_ms, 0.50);
      const double p99 = percentile(st.ok_ms, 0.99);
      const double hint_p50 = percentile(st.hint_ms, 0.50);
      if (mult == 0.5) p99_half = p99;
      if (mult == 2.0) {
        goodput_2x = st.goodput;
        p99_2x = p99;
      }
      untyped_total += st.untyped;
      char label[16];
      std::snprintf(label, sizeof label, "%.1fx", mult);
      const telemetry::Labels tag{{"offered", label}};
      reg.gauge("bench.overload.offered_rps", tag).set(st.offered_actual);
      reg.gauge("bench.overload.goodput_rps", tag).set(st.goodput);
      reg.gauge("bench.overload.ok", tag).set(static_cast<double>(st.ok));
      reg.gauge("bench.overload.shed", tag).set(static_cast<double>(st.shed));
      reg.gauge("bench.overload.lost", tag)
          .set(static_cast<double>(st.lost + st.other_err + st.deadline_exceeded));
      reg.gauge("bench.overload.p50_ms", tag).set(p50);
      reg.gauge("bench.overload.p99_ms", tag).set(p99);
      reg.gauge("bench.overload.hint_p50_ms", tag).set(hint_p50);
      table.row({label, bench::fmt(st.offered_actual, 0), bench::fmt(st.goodput, 0),
                 std::to_string(st.ok), std::to_string(st.shed),
                 std::to_string(st.lost + st.other_err + st.deadline_exceeded),
                 bench::fmt(p50, 2), bench::fmt(p99, 2), bench::fmt(hint_p50, 1)});
    }
    table.print();

    // The acceptance gauges the CI soak and bench_diff watch: goodput at 2x
    // offered load as a fraction of closed-loop capacity, accepted-request
    // p99 inflation vs the unloaded (0.5x) run, and the count of rejections
    // that were NOT typed retryable Overloaded-with-hint (target: zero).
    const double frac = capacity > 0 ? goodput_2x / capacity : 0;
    const double ratio = p99_half > 0 ? p99_2x / p99_half : 0;
    reg.gauge("bench.overload.goodput_frac_2x").set(frac);
    reg.gauge("bench.overload.p99_ratio_2x").set(ratio);
    reg.gauge("bench.overload.shed_untyped").set(static_cast<double>(untyped_total));
    std::printf(
        "\n2x offered: goodput %.0f%% of capacity (target >= 70%%)   "
        "p99 %.2fx unloaded (target <= 5x)   untyped sheds %llu (target 0)\n",
        frac * 100.0, ratio, static_cast<unsigned long long>(untyped_total));
    bench::export_json_if_requested(argc, argv, "bench_t3_service_throughput --overload");
    return 0;
  }

  if (faults) {
    const auto seed = cfg.seed;
    Fixture fx(cfg.lambda, seed);
    bench::banner("T3: service throughput under seeded fault injection",
                  "crash-safe refresh / reconnect reconciliation, DESIGN.md §9");
    std::printf("backend=mock  lambda=%zu  ell=%zu  seed=%llu  requests=%d  clients=4\n\n",
                cfg.lambda, fx.prm.ell, static_cast<unsigned long long>(seed),
                cfg.requests);
    const FaultRun r = run_faults(fx, seed, /*clients=*/4, cfg.requests);
    const double p50 = percentile(r.recovery_ms, 0.50);
    const double p95 = percentile(r.recovery_ms, 0.95);
    const double pmax = r.recovery_ms.empty() ? 0 : r.recovery_ms.back();

    auto& reg = telemetry::Registry::global();
    const telemetry::Labels tag{{"seed", std::to_string(seed)}};
    reg.gauge("bench.rps.faulted", tag).set(r.rps);
    reg.gauge("bench.recovery.count", tag).set(static_cast<double>(r.recovery_ms.size()));
    reg.gauge("bench.recovery.p50_ms", tag).set(p50);
    reg.gauge("bench.recovery.p95_ms", tag).set(p95);
    reg.gauge("bench.recovery.max_ms", tag).set(pmax);
    reg.gauge("bench.faults.injected", tag).set(static_cast<double>(r.injected));
    reg.gauge("bench.faults.reconnects", tag).set(static_cast<double>(r.reconnects));
    reg.gauge("bench.faults.gave_up", tag).set(static_cast<double>(r.failed));

    bench::Table table({"metric", "value"});
    table.row({"req/s (degraded)", bench::fmt(r.rps, 1)});
    table.row({"decrypts ok / gave up", std::to_string(r.ok) + " / " + std::to_string(r.failed)});
    table.row({"faults injected", std::to_string(r.injected)});
    table.row({"reconnects", std::to_string(r.reconnects)});
    table.row({"recoveries (decrypts that reconnected)", std::to_string(r.recovery_ms.size())});
    table.row({"recovery latency p50 (ms)", bench::fmt(p50, 2)});
    table.row({"recovery latency p95 (ms)", bench::fmt(p95, 2)});
    table.row({"recovery latency max (ms)", bench::fmt(pmax, 2)});
    table.print();
    bench::export_json_if_requested(argc, argv, "bench_t3_service_throughput --faults");
    return 0;
  }

  Fixture fx(cfg.lambda, cfg.seed);
  bench::banner("T3: decryption-service throughput (req/s over loopback TCP)",
                "service deployment of Construction 5.3, §1.1/§4.4");
  std::printf("backend=mock  lambda=%zu  kappa=%zu  ell=%zu  requests/point=%d  hw_threads=%u\n\n",
              cfg.lambda, fx.prm.kappa, fx.prm.ell, cfg.requests,
              std::thread::hardware_concurrency());

  auto& reg = telemetry::Registry::global();
  bench::Table table({"workers", "clients", "req/s", "ms/req (offered)"});
  double rps_full_load = 0;  // the (4, 8) point, reused as the scrape control
  std::map<int, double> rps_by_workers;  // clients=8 sweep, for scaling ratios
  auto point = [&](int workers, int clients) {
    const double rps = run_point(fx, workers, clients, cfg.requests);
    if (workers == 4 && clients == 8) rps_full_load = rps;
    if (clients == 8) rps_by_workers[workers] = rps;
    reg.gauge("bench.rps", {{"workers", std::to_string(workers)},
                            {"clients", std::to_string(clients)}})
        .set(rps);
    table.row({std::to_string(workers), std::to_string(clients), bench::fmt(rps, 1),
               bench::fmt(1000.0 / rps * clients, 3)});
  };

  // Sweep 1: worker scaling at a fixed client fan-in.
  for (const int w : {1, 2, 4, 8}) point(w, 8);
  // Sweep 2: client fan-in at a fixed pool.
  for (const int c : {2, 4, 16}) point(4, c);

  table.print();

  // Worker-scaling ratios (the CI smoke asserts on these on multicore
  // runners; on a 1-core host they hover near 1 and report only) plus the
  // unbatched control the batching gains are measured against.
  const double rps_unbatched = run_point(fx, 4, 8, cfg.requests, nullptr,
                                         /*pipeline=*/false);
  reg.gauge("bench.rps.unbatched",
            {{"workers", "4"}, {"clients", "8"}})
      .set(rps_unbatched);
  reg.gauge("bench.hw_threads")
      .set(static_cast<double>(std::thread::hardware_concurrency()));
  if (rps_by_workers.count(1) != 0 && rps_by_workers[1] > 0) {
    reg.gauge("bench.scaling.rps_ratio_4v1").set(rps_by_workers[4] / rps_by_workers[1]);
    reg.gauge("bench.scaling.rps_ratio_8v1").set(rps_by_workers[8] / rps_by_workers[1]);
  }

  // Single-client latency percentiles, batched vs unbatched (ISSUE.md's p95
  // budget: pipelined p95 within 1.5x the unbatched baseline).
  bench::Table ltable({"path", "p50 ms", "p95 ms", "p99 ms", "req/s"});
  for (const bool pl : {true, false}) {
    const LatencyStats ls = run_latency(fx, pl, cfg.requests);
    const telemetry::Labels tag{{"pipeline", pl ? "on" : "off"}};
    reg.gauge("bench.latency.p50_ms", tag).set(ls.p50_ms);
    reg.gauge("bench.latency.p95_ms", tag).set(ls.p95_ms);
    reg.gauge("bench.latency.p99_ms", tag).set(ls.p99_ms);
    reg.gauge("bench.latency.rps", tag).set(ls.rps);
    ltable.row({pl ? "pipelined" : "unbatched", bench::fmt(ls.p50_ms, 3),
                bench::fmt(ls.p95_ms, 3), bench::fmt(ls.p99_ms, 3),
                bench::fmt(ls.rps, 1)});
  }
  std::printf("\nsingle-client latency (1 conn, sequential):\n");
  ltable.print();
  std::printf("unbatched control @4w/8c: %s req/s   scaling 4v1=%s 8v1=%s\n",
              bench::fmt(rps_unbatched, 1).c_str(),
              rps_by_workers[1] > 0
                  ? bench::fmt(rps_by_workers[4] / rps_by_workers[1], 2).c_str()
                  : "n/a",
              rps_by_workers[1] > 0
                  ? bench::fmt(rps_by_workers[8] / rps_by_workers[1], 2).c_str()
                  : "n/a");

  if (scrape) {
    // Measure the scrape tax with interleaved control/scraped pairs at the
    // full-load point and compare medians -- a single control taken earlier
    // in the sweep lets thermal/cache drift masquerade as overhead.
    ScrapeStats st;
    std::vector<double> ctl{rps_full_load}, scr;
    for (int rep = 0; rep < 5; ++rep) {
      scr.push_back(run_point(fx, 4, 8, cfg.requests, &st));
      ctl.push_back(run_point(fx, 4, 8, cfg.requests));
    }
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      const std::size_t n = v.size();
      return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
    };
    const double rps_control = median(ctl);
    const double rps_scraped = median(scr);
    const double overhead_pct =
        rps_control > 0 ? (rps_control - rps_scraped) / rps_control * 100.0 : 0;
    reg.gauge("bench.scrape.rps").set(rps_scraped);
    reg.gauge("bench.scrape.polls").set(static_cast<double>(st.scrapes));
    reg.gauge("bench.scrape.overhead_pct").set(overhead_pct);
    reg.gauge("bench.scrape.inflight.max").set(st.max_inflight);
    reg.gauge("bench.scrape.queue_depth.max").set(st.max_queue_depth);
    for (const auto& [name, v] : st.last_svc)
      reg.gauge("bench.scrape." + name).set(v);

    bench::Table stable({"scrape metric", "value"});
    stable.row({"req/s (admin polled)", bench::fmt(rps_scraped, 1)});
    stable.row({"scrape polls landed", std::to_string(st.scrapes)});
    stable.row({"overhead vs unscraped (%)", bench::fmt(overhead_pct, 2)});
    stable.row({"max svc_inflight seen", bench::fmt(st.max_inflight, 0)});
    stable.row({"max svc_queue_depth seen", bench::fmt(st.max_queue_depth, 0)});
    stable.print();
  }
  bench::export_json_if_requested(argc, argv, "bench_t3_service_throughput");
  return 0;
}
