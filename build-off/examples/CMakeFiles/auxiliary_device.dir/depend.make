# Empty dependencies file for auxiliary_device.
# This may be replaced when dependencies are built.
