#include "telemetry/trace.hpp"

#if DLR_TELEMETRY_ENABLED

#include <chrono>

namespace dlr::telemetry {

namespace {

/// Monotonic nanoseconds since the first call (process-local epoch keeps the
/// exported numbers small and diff-friendly).
std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch).count();
}

// Per-thread stack of open spans; the back is the current span.
thread_local std::vector<Span> t_open;

}  // namespace

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

std::uint64_t Tracer::begin(const char* label) {
  Span s;
  s.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  s.parent = t_open.empty() ? 0 : t_open.back().id;
  s.label = label;
  s.start_ns = now_ns();
  const std::uint64_t id = s.id;
  t_open.push_back(std::move(s));
  return id;
}

void Tracer::end(std::uint64_t id) {
  while (!t_open.empty()) {
    Span s = std::move(t_open.back());
    t_open.pop_back();
    s.end_ns = now_ns();
    const bool match = s.id == id;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (finished_.size() < kMaxFinished)
        finished_.push_back(std::move(s));
      else
        ++dropped_;
    }
    if (match) return;
  }
}

void Tracer::attr_add(const std::string& key, double delta) {
  if (t_open.empty()) return;
  auto& attrs = t_open.back().attrs;
  for (auto& [k, v] : attrs) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  attrs.emplace_back(key, delta);
}

bool Tracer::in_span() const { return !t_open.empty(); }

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return finished_;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::reset() {
  t_open.clear();
  std::lock_guard<std::mutex> lk(mu_);
  finished_.clear();
  dropped_ = 0;
}

}  // namespace dlr::telemetry

#endif  // DLR_TELEMETRY_ENABLED
