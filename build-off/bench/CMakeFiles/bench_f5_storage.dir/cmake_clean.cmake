file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_storage.dir/bench_f5_storage.cpp.o"
  "CMakeFiles/bench_f5_storage.dir/bench_f5_storage.cpp.o.d"
  "bench_f5_storage"
  "bench_f5_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
