# Empty dependencies file for perf_paths_test.
# This may be replaced when dependencies are built.
