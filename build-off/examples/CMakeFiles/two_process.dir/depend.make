# Empty dependencies file for two_process.
# This may be replaced when dependencies are built.
