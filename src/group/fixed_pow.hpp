// Fixed-base exponentiation with windowed precomputation.
//
// Encryption raises the *same* public-key bases (g and Z = e(g1,g2)) to fresh
// exponents on every call; a one-time table of base^(d * 16^i) turns each
// exponentiation into ~bits/4 multiplications with no squarings. Built on the
// BilinearGroup interface with two optional native hooks:
//
//   * gg.g_comb_table(base, windows) -- builds the G table in Jacobian
//     coordinates and normalizes it with ONE batch inversion (vs one Fermat
//     inversion per affine g_mul in the generic loop);
//   * gg.g_prod(span) -- folds the selected table entries with mixed adds and
//     a single final inversion, which is what makes a G-side table pay off at
//     all on affine-coordinate backends.
//
// Wrappers hold only the table; callers pass the (cheap, shared) group handle
// to pow() instead of every wrapper dragging its own GG copy around.
#pragma once

#include <vector>

#include "group/bilinear.hpp"

namespace dlr::group {

namespace detail {

/// Little-endian base-16 digits of a scalar, via its serialization.
template <class GG>
std::vector<unsigned> scalar_nibbles(const GG& gg, const typename GG::Scalar& e) {
  ByteWriter w;
  gg.sc_ser(w, e);
  const auto& bytes = w.bytes();
  std::vector<unsigned> out;
  out.reserve(2 * bytes.size());
  for (const auto b : bytes) {
    out.push_back(b & 0xf);
    out.push_back(b >> 4);
  }
  return out;
}

/// Generic comb-table build: base^(d * 16^i) by repeated Ops::mul.
template <class GG, class Elem, class Ops>
std::vector<Elem> build_table_generic(const GG& gg, const Elem& base, std::size_t windows) {
  std::vector<Elem> table(windows * 15);
  Elem cur = base;  // base^(16^i)
  for (std::size_t i = 0; i < windows; ++i) {
    Elem acc = cur;
    for (int d = 1; d <= 15; ++d) {
      table[15 * i + static_cast<std::size_t>(d - 1)] = acc;
      if (d < 15) acc = Ops::mul(gg, acc, cur);
    }
    cur = Ops::mul(gg, acc, cur);  // acc == base^(15*16^i); * cur -> 16^(i+1)
  }
  return table;
}

/// Shared implementation over an element type + ops functor.
template <class GG, class Elem, class Ops>
class FixedPowImpl {
 public:
  FixedPowImpl(const GG& gg, const Elem& base, std::size_t max_bits)
      : windows_((max_bits + 3) / 4), table_(Ops::table(gg, base, windows_)) {}

  [[nodiscard]] Elem pow(const GG& gg, const typename GG::Scalar& e) const {
    const auto nibbles = Ops::nibbles(gg, e);
    std::vector<Elem> sel;
    sel.reserve(windows_);
    for (std::size_t i = 0; i < nibbles.size() && i < windows_; ++i) {
      const auto d = nibbles[i];
      if (d != 0) sel.push_back(table_[15 * i + (d - 1)]);
    }
    return Ops::prod(gg, sel);
  }

  [[nodiscard]] std::size_t table_elems() const { return table_.size(); }

 private:
  std::size_t windows_;
  std::vector<Elem> table_;
};

template <class GG>
struct GOps {
  static typename GG::G mul(const GG& gg, const typename GG::G& a, const typename GG::G& b) {
    return gg.g_mul(a, b);
  }
  static std::vector<unsigned> nibbles(const GG& gg, const typename GG::Scalar& e) {
    return scalar_nibbles(gg, e);
  }
  static std::vector<typename GG::G> table(const GG& gg, const typename GG::G& base,
                                           std::size_t windows) {
    if constexpr (requires { gg.g_comb_table(base, windows); }) {
      return gg.g_comb_table(base, windows);
    } else {
      return build_table_generic<GG, typename GG::G, GOps>(gg, base, windows);
    }
  }
  static typename GG::G prod(const GG& gg, std::span<const typename GG::G> sel) {
    if constexpr (requires { gg.g_prod(sel); }) {
      return gg.g_prod(sel);
    } else {
      auto acc = gg.g_id();
      for (const auto& s : sel) acc = gg.g_mul(acc, s);
      return acc;
    }
  }
};

template <class GG>
struct GTOps {
  static typename GG::GT mul(const GG& gg, const typename GG::GT& a,
                             const typename GG::GT& b) {
    return gg.gt_mul(a, b);
  }
  static std::vector<unsigned> nibbles(const GG& gg, const typename GG::Scalar& e) {
    return scalar_nibbles(gg, e);
  }
  static std::vector<typename GG::GT> table(const GG& gg, const typename GG::GT& base,
                                            std::size_t windows) {
    return build_table_generic<GG, typename GG::GT, GTOps>(gg, base, windows);
  }
  static typename GG::GT prod(const GG& gg, std::span<const typename GG::GT> sel) {
    auto acc = gg.gt_id();
    for (const auto& s : sel) acc = gg.gt_mul(acc, s);
    return acc;
  }
};

}  // namespace detail

template <BilinearGroup GG>
class FixedPowG {
 public:
  FixedPowG(const GG& gg, const typename GG::G& base) : impl_(gg, base, gg.scalar_bits()) {}
  [[nodiscard]] typename GG::G pow(const GG& gg, const typename GG::Scalar& e) const {
    return impl_.pow(gg, e);
  }
  [[nodiscard]] std::size_t table_elems() const { return impl_.table_elems(); }

 private:
  detail::FixedPowImpl<GG, typename GG::G, detail::GOps<GG>> impl_;
};

template <BilinearGroup GG>
class FixedPowGT {
 public:
  FixedPowGT(const GG& gg, const typename GG::GT& base) : impl_(gg, base, gg.scalar_bits()) {}
  [[nodiscard]] typename GG::GT pow(const GG& gg, const typename GG::Scalar& e) const {
    return impl_.pow(gg, e);
  }
  [[nodiscard]] std::size_t table_elems() const { return impl_.table_elems(); }

 private:
  detail::FixedPowImpl<GG, typename GG::GT, detail::GTOps<GG>> impl_;
};

}  // namespace dlr::group
