// Parameter derivation for the DLR family (paper, Section 5 preamble):
//
//   epsilon = 2^{-n}
//   kappa   = 1 + (lambda + 2*log(1/eps)) / log p
//   l       = 7 + 3*kappa + 2*log(1/eps) / log p
//
// With log p = n (an n-bit prime group order) these give kappa = 1 +
// ceil((lambda + 2n)/n) and l = 9 + 3*kappa, and |sk_comm| = kappa*log p =
// lambda + 3n, matching the proof sketch in Section 6.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace dlr::schemes {

struct DlrParams {
  std::size_t n = 0;       // security parameter (== log p here)
  std::size_t lambda = 0;  // leakage parameter (bits per period from P1)
  std::size_t log_p = 0;   // bits of the group order
  std::size_t kappa = 0;   // HPSKE width |sk_comm|/log p
  std::size_t ell = 0;     // Pi_ss width |sk_2|/log p

  static constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
    return (a + b - 1) / b;
  }

  /// Derive parameters for a group with `log_p`-bit order; n defaults to
  /// log_p (the paper's convention: p is an n-bit prime).
  static DlrParams derive(std::size_t log_p, std::size_t lambda, std::size_t n = 0) {
    if (log_p < 2) throw std::invalid_argument("DlrParams: log_p too small");
    if (n == 0) n = log_p;
    DlrParams prm;
    prm.n = n;
    prm.lambda = lambda;
    prm.log_p = log_p;
    prm.kappa = 1 + ceil_div(lambda + 2 * n, log_p);
    prm.ell = 7 + 3 * prm.kappa + ceil_div(2 * n, log_p);
    return prm;
  }

  /// |sk_comm| in bits (the paper's m1 for the compact P1 storage mode).
  [[nodiscard]] std::size_t skcomm_bits() const { return kappa * log_p; }
  /// |sk_2| in bits (the paper's m2).
  [[nodiscard]] std::size_t sk2_bits() const { return ell * log_p; }

  /// Theorem 4.1 leakage bound for P1: b1 = (1 - c*n/(lambda + c*n)) * m1
  /// with c = 3 for this construction (|sk_comm| = lambda + 3n), i.e. b1 =
  /// lambda bits.
  [[nodiscard]] std::size_t b1_bits() const { return lambda; }
  /// Theorem 4.1 bound for P2: b2 = m2 (the whole share may leak).
  [[nodiscard]] std::size_t b2_bits() const { return sk2_bits(); }
};

}  // namespace dlr::schemes
