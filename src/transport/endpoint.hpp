// Blocking-style socket endpoints with poll()-based deadlines.
//
// Every file descriptor here is non-blocking under the hood; send_all /
// recv_exact loop poll()+read/write so each call honours a configurable
// deadline and surfaces Timeout / ConnectionClosed / Io as typed
// TransportErrors. connect_loopback retries a bounded number of times with
// doubling backoff (counted in the transport.retries telemetry counter).
//
// FramedConn layers the frame codec on a Socket: writes are mutex-serialized
// so many worker threads can reply over one shared connection, reads are
// single-consumer (one reader/pump thread per connection, the SessionMux
// pattern). shutdown() from any thread wakes a blocked reader with
// ConnectionClosed, which is the orderly way to stop a pump thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "transport/frame.hpp"

namespace dlr::transport {

using Millis = std::chrono::milliseconds;

struct TransportOptions {
  Millis send_timeout{10000};
  Millis recv_timeout{10000};
  int connect_retries = 8;        // additional attempts after the first
  Millis connect_backoff{10};     // doubles per retry, capped at 500ms
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// RAII non-blocking socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd);
  Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  /// Connected AF_UNIX stream pair (same-host two-process setups).
  static std::pair<Socket, Socket> pair();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Write the whole span before `timeout` elapses, else Timeout.
  void send_all(std::span<const std::uint8_t> data, Millis timeout);
  /// Read exactly out.size() bytes; EOF mid-read is ConnectionClosed.
  /// timeout == nullopt blocks indefinitely (used by pump threads, which are
  /// woken by shutdown()).
  void recv_exact(std::span<std::uint8_t> out, std::optional<Millis> timeout);

  /// Wake any blocked reader/writer on this fd with ConnectionClosed.
  /// Safe to call from another thread while recv/send are in flight.
  void shutdown_both() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Loopback TCP listener (port 0 = ephemeral; port() reports the binding).
class Listener {
 public:
  Listener() = default;
  static Listener loopback(std::uint16_t port = 0);
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return sock_.valid(); }

  /// Accept one connection; throws Timeout if none arrives in time and
  /// ConnectionClosed once close()/shutdown() has been called.
  Socket accept(Millis timeout);

  void close() noexcept { sock_.shutdown_both(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port with bounded retries + doubling backoff
/// (RetryPolicy derived from TransportOptions). Each re-attempt increments
/// the transport.retries counter; exhausting the budget throws
/// RetriesExhausted.
Socket connect_loopback(std::uint16_t port, const TransportOptions& opt = {});

/// Frame-granular connection interface. FramedConn is the real socket
/// implementation; FaultInjector (transport/fault.hpp) wraps one to inject
/// deterministic failures. SessionMux and the service layer program against
/// this interface so chaos tests swap transports without touching them.
class Conn {
 public:
  virtual ~Conn() = default;

  virtual void send(const Frame& f) = 0;
  /// Send several frames back-to-back. The default loops send() per frame;
  /// implementations may coalesce into fewer writes, but the byte stream must
  /// be identical to the sequential sends. Wrappers that fault or count per
  /// frame (FaultInjector) keep the per-frame default on purpose.
  virtual void send_many(std::span<const Frame> fs) {
    for (const Frame& f : fs) send(f);
  }
  /// timeout == nullopt blocks indefinitely (pump threads, woken by
  /// shutdown()).
  virtual Frame recv(std::optional<Millis> timeout) = 0;
  Frame recv() { return recv(options().recv_timeout); }
  /// Block until a frame arrives or the connection dies (pump threads).
  Frame recv_blocking() { return recv(std::nullopt); }

  [[nodiscard]] virtual const TransportOptions& options() const = 0;
  virtual void shutdown() noexcept = 0;
};

/// Frame-granular connection over a Socket. Thread-safe concurrent send();
/// recv() is single-consumer.
class FramedConn : public Conn {
 public:
  FramedConn(Socket sock, TransportOptions opt) : sock_(std::move(sock)), opt_(opt) {}

  void send(const Frame& f) override;
  /// Encodes every frame into one buffer and writes it with a single
  /// send_all under the send mutex -- one syscall (and one wakeup on the
  /// peer's poller) per batch instead of one per reply.
  void send_many(std::span<const Frame> fs) override;
  Frame recv(std::optional<Millis> timeout) override;
  using Conn::recv;

  /// Write raw bytes as-is (no frame header, no CRC). Exists solely so the
  /// fault injector can put malformed data on the wire; honest peers never
  /// call this.
  void send_raw(std::span<const std::uint8_t> wire);

  [[nodiscard]] const TransportOptions& options() const override { return opt_; }
  void shutdown() noexcept override { sock_.shutdown_both(); }

 private:
  Socket sock_;
  TransportOptions opt_;
  std::mutex send_mu_;
};

}  // namespace dlr::transport
