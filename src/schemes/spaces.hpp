// Message-space adapters: the paper's secondary scheme Pi_ss and the HPSKE
// Pi_comm are the same algebraic construction instantiated over G or over GT
// ("a HPSKE for l, G, GT", Definition 5.1). These adapters let one template
// serve both element types.
#pragma once

#include "group/bilinear.hpp"
#include "group/multi_exp.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
struct SpaceG {
  using Elem = typename GG::G;
  static Elem random(const GG& gg, crypto::Rng& rng) { return gg.g_random(rng); }
  static Elem mul(const GG& gg, const Elem& a, const Elem& b) { return gg.g_mul(a, b); }
  static Elem inv(const GG& gg, const Elem& a) { return gg.g_inv(a); }
  static Elem pow(const GG& gg, const Elem& a, const typename GG::Scalar& s) {
    return gg.g_pow(a, s);
  }
  static Elem multi_pow(const GG& gg, std::span<const Elem> as,
                        std::span<const typename GG::Scalar> ss) {
    return gg.g_multi_pow(as, ss);
  }
  /// Shared-exponent seam: G has no recode-once native, so Prepared is just
  /// the scalar copy and multi_pow_prepared forwards to g_multi_pow.
  struct Prepared {
    std::vector<typename GG::Scalar> ss;
  };
  static Prepared prepare_multi_pow(const GG&, std::span<const typename GG::Scalar> ss) {
    return Prepared{{ss.begin(), ss.end()}};
  }
  static Elem multi_pow_prepared(const GG& gg, const Prepared& p,
                                 std::span<const Elem> as) {
    return gg.g_multi_pow(as, p.ss);
  }
  static Elem id(const GG& gg) { return gg.g_id(); }
  static bool eq(const GG& gg, const Elem& a, const Elem& b) { return gg.g_eq(a, b); }
  static void ser(const GG& gg, ByteWriter& w, const Elem& a) { gg.g_ser(w, a); }
  static Elem deser(const GG& gg, ByteReader& r) { return gg.g_deser(r); }
  static std::size_t bytes(const GG& gg) { return gg.g_bytes(); }
};

template <group::BilinearGroup GG>
struct SpaceGT {
  using Elem = typename GG::GT;
  static Elem random(const GG& gg, crypto::Rng& rng) { return gg.gt_random(rng); }
  static Elem mul(const GG& gg, const Elem& a, const Elem& b) { return gg.gt_mul(a, b); }
  static Elem inv(const GG& gg, const Elem& a) { return gg.gt_inv(a); }
  static Elem pow(const GG& gg, const Elem& a, const typename GG::Scalar& s) {
    return gg.gt_pow(a, s);
  }
  static Elem multi_pow(const GG& gg, std::span<const Elem> as,
                        std::span<const typename GG::Scalar> ss) {
    return gg.gt_multi_pow(as, ss);
  }
  /// Shared-exponent seam: recodes ss once (native backends) so a batch of
  /// rows under one key pays a single wNAF recoding.
  using Prepared = group::PreparedGtPow<GG>;
  static Prepared prepare_multi_pow(const GG& gg, std::span<const typename GG::Scalar> ss) {
    return Prepared(gg, ss);
  }
  static Elem multi_pow_prepared(const GG& gg, const Prepared& p,
                                 std::span<const Elem> ts) {
    return p.pow(gg, ts);
  }
  static Elem id(const GG& gg) { return gg.gt_id(); }
  static bool eq(const GG& gg, const Elem& a, const Elem& b) { return gg.gt_eq(a, b); }
  static void ser(const GG& gg, ByteWriter& w, const Elem& a) { gg.gt_ser(w, a); }
  static Elem deser(const GG& gg, ByteReader& r) { return gg.gt_deser(r); }
  static std::size_t bytes(const GG& gg) { return gg.gt_bytes(); }
};

}  // namespace dlr::schemes
