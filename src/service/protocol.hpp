// Wire schema of the DLR decryption service, layered on transport frames.
//
// Every request is one Data frame on its own mux session; the response is one
// Data frame (label *.ok) or one Error frame (label svc.err) on the same
// session. Requests carry the client's view of the key epoch; the server
// coordinator rejects mismatches with StaleEpoch and requests that land
// while a refresh drains/runs with Draining -- both retryable: the client
// re-issues once its epoch catches up.
//
//   svc.dec  (Data)  body = u64 epoch | blob dec.r1 [| u32 deadline_ms]
//                                                        -> svc.dec.ok | svc.err
//   svc.ref  (Data)  body = u64 epoch | blob ref.r1      -> svc.ref.ok | svc.err
//   svc.err  (Error) body = u8 code | u64 server_epoch | str message
//                           [| u32 retry_after_ms]
//
// Refresh is a two-phase epoch commit (DESIGN.md §9). svc.ref is the PREPARE
// phase: the server computes and journals the next share but does not
// install it. The commit phase installs on the server first, then the
// client:
//
//   svc.ref.commit  (Data)  body = u64 epoch | blob digest  -> svc.ref.commit.ok | svc.err
//   svc.ref.commit.ok       body = u64 new_epoch
//
// where digest = SHA-256 of the ref round-1 message, identifying WHICH
// prepared refresh is being committed (duplicated/stale commits are
// detected, never applied twice).
//
// Reconnect reconciliation: the first frames on every new connection are a
// hello exchange. The client reports its epoch and any journaled
// PendingRefresh; the server answers with its epoch and a deterministic
// disposition for the pending refresh -- Commit iff the server already
// installed it (server epoch == pending epoch + 1), Rollback otherwise.
//
//   svc.hello     (Data)  body = u64 epoch | u8 has_pending | u64 pending_epoch | blob digest
//                                 [| u8 version]
//   svc.hello.ok  (Data)  body = u64 server_epoch | u8 disposition (RefDisposition)
//                                 [| u8 version]
//
// Version negotiation (DESIGN.md §10): a client that understands the wire
// trace envelope appends version = kWireTraceVersion to its hello. A v1
// server rejects the trailing byte as BadRequest, which the client treats as
// "peer is v1" -- it re-hellos without the byte and keeps wire tracing off.
// A v2 server accepts and echoes the version in hello.ok; only then do both
// sides stamp trace envelopes on Data frames. An un-versioned peer therefore
// never sees an envelope (whose flag bit it would reject as a bad device id).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"
#include "transport/frame.hpp"

namespace dlr::service {

inline constexpr char kLabelDecReq[] = "svc.dec";
inline constexpr char kLabelDecOk[] = "svc.dec.ok";
inline constexpr char kLabelRefReq[] = "svc.ref";
inline constexpr char kLabelRefOk[] = "svc.ref.ok";
inline constexpr char kLabelErr[] = "svc.err";
inline constexpr char kLabelRefCommit[] = "svc.ref.commit";
inline constexpr char kLabelRefCommitOk[] = "svc.ref.commit.ok";
inline constexpr char kLabelHello[] = "svc.hello";
inline constexpr char kLabelHelloOk[] = "svc.hello.ok";

enum class ServiceErrc : std::uint8_t {
  StaleEpoch = 1,  // request epoch != server epoch; retry after local refresh
  Draining = 2,    // a refresh is draining/running; retry shortly
  BadRequest = 3,  // request did not parse
  Internal = 4,    // server-side exception
  Shutdown = 5,    // server is draining for shutdown; retry elsewhere/later
  DrainTimeout = 6,  // refresh drain deadline expired; retry the refresh
  WrongShard = 7,  // (tenant, key) hashes to another shard; refetch the shard
                   // map (ks.map) and re-route -- retryable redirect
  UnknownKey = 8,  // (tenant, key) not provisioned on this shard (and the
                   // shard map says it should be here) -- not retryable
  Overloaded = 9,  // queue saturated; shed before any crypto was spent.
                   // Retryable -- the error body carries a retry-after hint
                   // (queue depth x EWMA per-item crypto cost) the client's
                   // RetrySchedule honors as a backoff floor
  DeadlineExceeded = 10,  // the request's deadline budget expired before the
                          // server could (or did) answer -- not retryable
                          // here: the client's budget is spent by definition
};

[[nodiscard]] constexpr const char* service_errc_name(ServiceErrc c) {
  switch (c) {
    case ServiceErrc::StaleEpoch: return "StaleEpoch";
    case ServiceErrc::Draining: return "Draining";
    case ServiceErrc::BadRequest: return "BadRequest";
    case ServiceErrc::Internal: return "Internal";
    case ServiceErrc::Shutdown: return "Shutdown";
    case ServiceErrc::DrainTimeout: return "DrainTimeout";
    case ServiceErrc::WrongShard: return "WrongShard";
    case ServiceErrc::UnknownKey: return "UnknownKey";
    case ServiceErrc::Overloaded: return "Overloaded";
    case ServiceErrc::DeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

/// A decoded svc.err response. StaleEpoch and Draining are transient
/// consequences of epoch-coordinated refresh, not failures of the request
/// itself -- callers retry them (DecryptionClient::decrypt does so itself).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceErrc code, std::uint64_t server_epoch, const std::string& msg,
               std::uint32_t retry_after_ms = 0)
      : std::runtime_error(std::string("service: ") + service_errc_name(code) + ": " + msg),
        code_(code),
        server_epoch_(server_epoch),
        retry_after_ms_(retry_after_ms) {}

  [[nodiscard]] ServiceErrc code() const { return code_; }
  [[nodiscard]] std::uint64_t server_epoch() const { return server_epoch_; }
  /// Server-computed backoff floor in ms (Overloaded only; 0 = no hint).
  [[nodiscard]] std::uint32_t retry_after_ms() const { return retry_after_ms_; }
  [[nodiscard]] bool retryable() const {
    return code_ == ServiceErrc::StaleEpoch || code_ == ServiceErrc::Draining ||
           code_ == ServiceErrc::DrainTimeout || code_ == ServiceErrc::Shutdown ||
           code_ == ServiceErrc::WrongShard || code_ == ServiceErrc::Overloaded;
  }

 private:
  ServiceErrc code_;
  std::uint64_t server_epoch_;
  std::uint32_t retry_after_ms_;
};

struct Request {
  std::uint64_t epoch = 0;
  Bytes round1;
  // Remaining deadline budget in ms at send time; 0 = no deadline. Carried as
  // an optional trailing u32, appended only when nonzero AND the hello
  // negotiation settled on >= kWireDeadlineVersion (a pre-deadline server
  // rejects trailing request bytes as BadRequest).
  std::uint32_t deadline_ms = 0;
};

[[nodiscard]] inline Bytes encode_request(std::uint64_t epoch, const Bytes& round1,
                                          std::uint32_t deadline_ms = 0) {
  ByteWriter w;
  w.u64(epoch);
  w.blob(round1);
  if (deadline_ms != 0) w.u32(deadline_ms);
  return w.take();
}

[[nodiscard]] inline Request decode_request(const Bytes& body) {
  ByteReader r(body);
  Request req;
  req.epoch = r.u64();
  req.round1 = r.blob();
  if (!r.done()) req.deadline_ms = r.u32();  // optional trailing deadline (v2)
  if (!r.done()) throw std::invalid_argument("service request: trailing bytes");
  return req;
}

[[nodiscard]] inline Bytes encode_error(ServiceErrc code, std::uint64_t server_epoch,
                                        const std::string& msg,
                                        std::uint32_t retry_after_ms = 0) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  w.u64(server_epoch);
  w.str(msg);
  // Optional trailing retry-after hint. Always backward compatible:
  // decode_error has never checked done() after the message, so a legacy
  // client simply ignores the extra bytes.
  if (retry_after_ms != 0) w.u32(retry_after_ms);
  return w.take();
}

[[nodiscard]] inline ServiceError decode_error(const Bytes& body) {
  ByteReader r(body);
  const auto code = static_cast<ServiceErrc>(r.u8());
  const std::uint64_t epoch = r.u64();
  const std::string msg = r.str();
  std::uint32_t retry_after_ms = 0;
  if (!r.done()) retry_after_ms = r.u32();  // optional hint (PR 9 servers)
  return {code, epoch, msg, retry_after_ms};
}

/// Highest hello/wire-format version this build speaks. Version 1 adds the
/// frame trace envelope (transport/frame.hpp); 0 means the legacy format.
inline constexpr std::uint8_t kWireTraceVersion = 1;

/// Version 2 adds the per-request deadline budget (trailing u32 on svc.dec /
/// ks.dec bodies) and the retry-after hint on svc.err. Negotiated exactly
/// like kWireTraceVersion: the client offers its highest version in hello,
/// the server echoes min(client, server). Deadlines are only stamped on the
/// wire when both sides settled on >= 2; the error hint needs no gate
/// because decode_error tolerates trailing bytes.
inline constexpr std::uint8_t kWireDeadlineVersion = 2;

/// How a reconnecting client must resolve a journaled PendingRefresh.
enum class RefDisposition : std::uint8_t {
  None = 0,      // nothing pending; epochs already agree
  Commit = 1,    // server installed the refresh: client must roll forward
  Rollback = 2,  // server did not install: client must discard the pending
};

struct HelloMsg {
  std::uint64_t epoch = 0;
  bool has_pending = false;
  std::uint64_t pending_epoch = 0;
  Bytes pending_digest;
  std::uint8_t version = 0;  // 0 = legacy peer; kWireTraceVersion = traced wire
};

[[nodiscard]] inline Bytes encode_hello(const HelloMsg& h) {
  ByteWriter w;
  w.u64(h.epoch);
  w.u8(h.has_pending ? 1 : 0);
  w.u64(h.pending_epoch);
  w.blob(h.pending_digest);
  // The version byte is appended only when nonzero, exactly so a v1 server
  // sees a byte-identical legacy hello.
  if (h.version != 0) w.u8(h.version);
  return w.take();
}

[[nodiscard]] inline HelloMsg decode_hello(const Bytes& body) {
  ByteReader r(body);
  HelloMsg h;
  h.epoch = r.u64();
  h.has_pending = r.u8() != 0;
  h.pending_epoch = r.u64();
  h.pending_digest = r.blob();
  if (!r.done()) h.version = r.u8();  // optional trailing version (v2 client)
  if (!r.done()) throw std::invalid_argument("svc.hello: trailing bytes");
  return h;
}

struct HelloOk {
  std::uint64_t server_epoch = 0;
  RefDisposition disposition = RefDisposition::None;
  std::uint8_t version = 0;  // echo of the negotiated version (0 = legacy)
};

[[nodiscard]] inline Bytes encode_hello_ok(const HelloOk& h) {
  ByteWriter w;
  w.u64(h.server_epoch);
  w.u8(static_cast<std::uint8_t>(h.disposition));
  if (h.version != 0) w.u8(h.version);
  return w.take();
}

[[nodiscard]] inline HelloOk decode_hello_ok(const Bytes& body) {
  ByteReader r(body);
  HelloOk h;
  h.server_epoch = r.u64();
  const std::uint8_t d = r.u8();
  if (d > 2) throw std::invalid_argument("svc.hello.ok: malformed");
  h.disposition = static_cast<RefDisposition>(d);
  if (!r.done()) h.version = r.u8();
  if (!r.done()) throw std::invalid_argument("svc.hello.ok: trailing bytes");
  return h;
}

struct CommitMsg {
  std::uint64_t epoch = 0;  // epoch being refreshed AWAY from
  Bytes digest;             // sha256 of the prepared round-1 message
};

[[nodiscard]] inline Bytes encode_commit(const CommitMsg& c) {
  ByteWriter w;
  w.u64(c.epoch);
  w.blob(c.digest);
  return w.take();
}

[[nodiscard]] inline CommitMsg decode_commit(const Bytes& body) {
  ByteReader r(body);
  CommitMsg c;
  c.epoch = r.u64();
  c.digest = r.blob();
  if (!r.done()) throw std::invalid_argument("svc.ref.commit: trailing bytes");
  return c;
}

[[nodiscard]] inline Bytes encode_commit_ok(std::uint64_t new_epoch) {
  ByteWriter w;
  w.u64(new_epoch);
  return w.take();
}

[[nodiscard]] inline std::uint64_t decode_commit_ok(const Bytes& body) {
  ByteReader r(body);
  const std::uint64_t e = r.u64();
  if (!r.done()) throw std::invalid_argument("svc.ref.commit.ok: trailing bytes");
  return e;
}

/// Classify a response frame: return the body of a successful `ok_label`
/// response, or throw the decoded ServiceError / a transport Protocol error.
[[nodiscard]] inline Bytes expect_ok(transport::Frame f, const char* ok_label) {
  if (f.type == transport::FrameType::Error && f.label == kLabelErr)
    throw decode_error(f.body);
  if (f.type != transport::FrameType::Data || f.label != ok_label)
    throw transport::TransportError(
        transport::Errc::Protocol,
        "expected '" + std::string(ok_label) + "', got label '" + f.label + "'");
  return std::move(f.body);
}

}  // namespace dlr::service
