// Fixed-base exponentiation with windowed precomputation.
//
// Encryption raises the *same* public-key bases (g and Z = e(g1,g2)) to fresh
// exponents on every call; a one-time table of base^(d * 16^i) turns each
// exponentiation into ~bits/4 multiplications with no squarings. Built purely
// on the BilinearGroup interface, so it works on every backend.
#pragma once

#include <vector>

#include "group/bilinear.hpp"

namespace dlr::group {

namespace detail {

/// Little-endian base-16 digits of a scalar, via its serialization.
template <class GG>
std::vector<unsigned> scalar_nibbles(const GG& gg, const typename GG::Scalar& e) {
  ByteWriter w;
  gg.sc_ser(w, e);
  const auto& bytes = w.bytes();
  std::vector<unsigned> out;
  out.reserve(2 * bytes.size());
  for (const auto b : bytes) {
    out.push_back(b & 0xf);
    out.push_back(b >> 4);
  }
  return out;
}

/// Shared implementation over an element type + ops functor.
template <class GG, class Elem, class Ops>
class FixedPowImpl {
 public:
  FixedPowImpl(const GG& gg, const Elem& base, std::size_t max_bits)
      : windows_((max_bits + 3) / 4) {
    table_.resize(windows_ * 15);
    Elem cur = base;  // base^(16^i)
    for (std::size_t i = 0; i < windows_; ++i) {
      Elem acc = cur;
      for (int d = 1; d <= 15; ++d) {
        table_[15 * i + static_cast<std::size_t>(d - 1)] = acc;
        if (d < 15) acc = Ops::mul(gg, acc, cur);
      }
      cur = Ops::mul(gg, acc, cur);  // acc == base^(15*16^i); * cur -> 16^(i+1)
    }
  }

  [[nodiscard]] Elem pow(const GG& gg, const typename GG::Scalar& e) const {
    Elem acc = Ops::id(gg);
    const auto nibbles = Ops::nibbles(gg, e);
    for (std::size_t i = 0; i < nibbles.size() && i < windows_; ++i) {
      const auto d = nibbles[i];
      if (d != 0) acc = Ops::mul(gg, acc, table_[15 * i + (d - 1)]);
    }
    return acc;
  }

  [[nodiscard]] std::size_t table_elems() const { return table_.size(); }

 private:
  std::size_t windows_;
  std::vector<Elem> table_;
};

template <class GG>
struct GOps {
  static typename GG::G mul(const GG& gg, const typename GG::G& a, const typename GG::G& b) {
    return gg.g_mul(a, b);
  }
  static typename GG::G id(const GG& gg) { return gg.g_id(); }
  static std::vector<unsigned> nibbles(const GG& gg, const typename GG::Scalar& e) {
    return scalar_nibbles(gg, e);
  }
};

template <class GG>
struct GTOps {
  static typename GG::GT mul(const GG& gg, const typename GG::GT& a,
                             const typename GG::GT& b) {
    return gg.gt_mul(a, b);
  }
  static typename GG::GT id(const GG& gg) { return gg.gt_id(); }
  static std::vector<unsigned> nibbles(const GG& gg, const typename GG::Scalar& e) {
    return scalar_nibbles(gg, e);
  }
};

}  // namespace detail

template <BilinearGroup GG>
class FixedPowG {
 public:
  FixedPowG(const GG& gg, const typename GG::G& base)
      : gg_(gg), impl_(gg, base, gg.scalar_bits()) {}
  [[nodiscard]] typename GG::G pow(const typename GG::Scalar& e) const {
    return impl_.pow(gg_, e);
  }
  [[nodiscard]] std::size_t table_elems() const { return impl_.table_elems(); }

 private:
  GG gg_;
  detail::FixedPowImpl<GG, typename GG::G, detail::GOps<GG>> impl_;
};

template <BilinearGroup GG>
class FixedPowGT {
 public:
  FixedPowGT(const GG& gg, const typename GG::GT& base)
      : gg_(gg), impl_(gg, base, gg.scalar_bits()) {}
  [[nodiscard]] typename GG::GT pow(const typename GG::Scalar& e) const {
    return impl_.pow(gg_, e);
  }
  [[nodiscard]] std::size_t table_elems() const { return impl_.table_elems(); }

 private:
  GG gg_;
  detail::FixedPowImpl<GG, typename GG::GT, detail::GTOps<GG>> impl_;
};

}  // namespace dlr::group
