// Tests for the Boneh-Boyen IBE substrate and the distributed DLRIBE:
// correctness across identities, distributed extract/decrypt/refresh,
// msk- and id-key share refresh invariants (Remark 4.1), transcripts.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr_ibe.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_tate_ss256;
using group::MockGroup;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

// ---- single-processor BB IBE -------------------------------------------------

TEST(BbIbeTest, EncDecRoundTrip) {
  const auto gg = make_mock();
  BbIbe<MockGroup> ibe(gg, 32);
  Rng rng(2000);
  auto [pp, mk] = ibe.setup(rng);
  for (const std::string id : {"alice@example.com", "bob@example.com", "x"}) {
    const auto sk = ibe.extract(pp, mk, id, rng);
    for (int i = 0; i < 5; ++i) {
      const auto m = gg.gt_random(rng);
      const auto ct = ibe.enc(pp, id, m, rng);
      EXPECT_TRUE(gg.gt_eq(ibe.dec(sk, ct), m));
    }
  }
}

TEST(BbIbeTest, WrongIdentityKeyFails) {
  const auto gg = make_mock();
  BbIbe<MockGroup> ibe(gg, 32);
  Rng rng(2001);
  auto [pp, mk] = ibe.setup(rng);
  const auto sk_bob = ibe.extract(pp, mk, "bob", rng);
  const auto m = gg.gt_random(rng);
  const auto ct = ibe.enc(pp, "alice", m, rng);
  EXPECT_FALSE(gg.gt_eq(ibe.dec(sk_bob, ct), m));
}

TEST(BbIbeTest, ExtractIsRandomizedButFunctional) {
  const auto gg = make_mock();
  BbIbe<MockGroup> ibe(gg, 16);
  Rng rng(2002);
  auto [pp, mk] = ibe.setup(rng);
  const auto sk1 = ibe.extract(pp, mk, "carol", rng);
  const auto sk2 = ibe.extract(pp, mk, "carol", rng);
  EXPECT_FALSE(gg.g_eq(sk1.m, sk2.m));  // fresh randomness
  const auto m = gg.gt_random(rng);
  const auto ct = ibe.enc(pp, "carol", m, rng);
  EXPECT_TRUE(gg.gt_eq(ibe.dec(sk1, ct), m));
  EXPECT_TRUE(gg.gt_eq(ibe.dec(sk2, ct), m));
}

TEST(BbIbeTest, HashIdDeterministicAndLength) {
  const auto gg = make_mock();
  BbIbe<MockGroup> ibe(gg, 48);
  EXPECT_EQ(ibe.hash_id("x").size(), 48u);
  EXPECT_EQ(ibe.hash_id("x"), ibe.hash_id("x"));
  EXPECT_NE(ibe.hash_id("x"), ibe.hash_id("y"));
}

TEST(BbIbeTest, CiphertextSerialization) {
  const auto gg = make_mock();
  BbIbe<MockGroup> ibe(gg, 16);
  Rng rng(2003);
  auto [pp, mk] = ibe.setup(rng);
  const auto m = gg.gt_random(rng);
  const auto ct = ibe.enc(pp, "dave", m, rng);
  ByteWriter w;
  ibe.ser_ciphertext(w, ct);
  EXPECT_EQ(w.size(), ibe.ciphertext_bytes());
  ByteReader r(w.bytes());
  const auto ct2 = ibe.deser_ciphertext(r);
  const auto sk = ibe.extract(pp, mk, "dave", rng);
  EXPECT_TRUE(gg.gt_eq(ibe.dec(sk, ct2), m));
}

TEST(BbIbeTest, BadIdBitsRejected) {
  EXPECT_THROW(BbIbe<MockGroup>(make_mock(), 0), std::invalid_argument);
  EXPECT_THROW(BbIbe<MockGroup>(make_mock(), 257), std::invalid_argument);
}

TEST(BbIbeTest, TateRoundTrip) {
  const auto gg = make_tate_ss256();
  BbIbe<group::TateSS256> ibe(gg, 8);
  Rng rng(2004);
  auto [pp, mk] = ibe.setup(rng);
  const auto sk = ibe.extract(pp, mk, "eve", rng);
  const auto m = gg.gt_random(rng);
  const auto ct = ibe.enc(pp, "eve", m, rng);
  EXPECT_TRUE(gg.gt_eq(ibe.dec(sk, ct), m));
}

// ---- distributed DLRIBE ---------------------------------------------------------

TEST(DlrIbeTest, DistributedExtractAndDecrypt) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 32, 2100);
  Rng rng(2101);
  for (const std::string id : {"alice", "bob"}) {
    sys.extract(id);
    for (int i = 0; i < 5; ++i) {
      const auto m = gg.gt_random(rng);
      const auto ct = sys.scheme().enc(sys.pp(), id, m, rng);
      EXPECT_TRUE(gg.gt_eq(sys.decrypt(id, ct), m));
    }
  }
}

TEST(DlrIbeTest, DistributedMatchesTate) {
  const auto gg = make_tate_ss256();
  const auto prm = DlrParams::derive(gg.scalar_bits(), 16);
  auto sys = DlrIbeSystem<group::TateSS256>::create(gg, prm, 4, 2102);
  Rng rng(2103);
  sys.extract("z");
  const auto m = gg.gt_random(rng);
  const auto ct = sys.scheme().enc(sys.pp(), "z", m, rng);
  EXPECT_TRUE(gg.gt_eq(sys.decrypt("z", ct), m));
}

TEST(DlrIbeTest, MskSharingReconstructs) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2104);
  EXPECT_TRUE(gg.g_eq(
      sys.scheme().reconstruct(sys.p1().msk_share(), sys.p2().msk_share()),
      sys.msk_for_test()));
}

TEST(DlrIbeTest, IdKeySharingReconstructsBbKey) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2105);
  sys.extract("frank");
  // Reconstructed M must be a valid BB identity key for the R_j held by P1.
  const auto& share1 = sys.p1().id_share("frank");
  const auto m_rec = sys.scheme().reconstruct(share1.unit, sys.p2().id_share("frank"));
  typename BbIbe<MockGroup>::IdentityKey sk{share1.r, m_rec};
  Rng rng(2106);
  const auto msg = gg.gt_random(rng);
  const auto ct = sys.scheme().enc(sys.pp(), "frank", msg, rng);
  EXPECT_TRUE(gg.gt_eq(sys.scheme().bb().dec(sk, ct), msg));
}

TEST(DlrIbeTest, MskRefreshKeepsBothKindsOfKeysWorking) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2107);
  Rng rng(2108);
  sys.extract("grace");
  const auto msk0 = sys.msk_for_test();
  for (int t = 0; t < 5; ++t) {
    sys.refresh_msk();
    // msk invariant under refresh.
    EXPECT_TRUE(gg.g_eq(
        sys.scheme().reconstruct(sys.p1().msk_share(), sys.p2().msk_share()), msk0));
    // Old identity keys still decrypt.
    const auto m = gg.gt_random(rng);
    const auto ct = sys.scheme().enc(sys.pp(), "grace", m, rng);
    EXPECT_TRUE(gg.gt_eq(sys.decrypt("grace", ct), m));
    // And new extractions still work.
    const auto id = "user" + std::to_string(t);
    sys.extract(id);
    const auto m2 = gg.gt_random(rng);
    EXPECT_TRUE(gg.gt_eq(sys.decrypt(id, sys.scheme().enc(sys.pp(), id, m2, rng)), m2));
  }
}

TEST(DlrIbeTest, IdKeyRefreshChangesSharesNotKey) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2109);
  Rng rng(2110);
  sys.extract("heidi");
  const auto m_before =
      sys.scheme().reconstruct(sys.p1().id_share("heidi").unit, sys.p2().id_share("heidi"));
  const auto s_before = sys.p2().id_share("heidi").s;
  for (int t = 0; t < 5; ++t) {
    sys.refresh_id("heidi");
    EXPECT_TRUE(gg.g_eq(sys.scheme().reconstruct(sys.p1().id_share("heidi").unit,
                                                 sys.p2().id_share("heidi")),
                        m_before));
    EXPECT_FALSE(sys.p2().id_share("heidi").s == s_before);
    const auto m = gg.gt_random(rng);
    EXPECT_TRUE(
        gg.gt_eq(sys.decrypt("heidi", sys.scheme().enc(sys.pp(), "heidi", m, rng)), m));
  }
}

TEST(DlrIbeTest, TranscriptShape) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, prm, 16, 2111);
  net::Channel ch;
  sys.extract("ivy", ch);
  const auto& ms = ch.transcript().messages();
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0].label, "ext.r1");
  // Extract round 1 = (f_i, f'_i)_i + f_{PhiW}: 2l+1 G-HPSKE ciphertexts.
  EXPECT_EQ(ms[0].size_bytes(), (2 * prm.ell + 1) * (prm.kappa + 1) * gg.g_bytes());
  EXPECT_EQ(ms[1].size_bytes(), (prm.kappa + 1) * gg.g_bytes());
}

TEST(DlrIbeTest, UnknownIdentityThrows) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2112);
  Rng rng(2113);
  const auto ct = sys.scheme().enc(sys.pp(), "nobody", gg.gt_random(rng), rng);
  EXPECT_THROW((void)sys.decrypt("nobody", ct), std::out_of_range);
}

TEST(DlrIbeTest, EraseIdForgets) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2114);
  sys.extract("tmp");
  EXPECT_TRUE(sys.p1().has_id("tmp"));
  sys.p1().erase_id("tmp");
  sys.p2().erase_id("tmp");
  EXPECT_FALSE(sys.p1().has_id("tmp"));
  EXPECT_EQ(sys.p1().id_count(), 0u);
}

TEST(DlrIbeTest, RerandomizeIdKeyExtension) {
  // The BB-key re-randomization extension: R_j and the blinded M both change,
  // P2's share is untouched, and decryption still works.
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2116);
  Rng rng(2117);
  sys.extract("judy");
  const auto r_before = sys.p1().id_share("judy").r;
  const auto phi_before = sys.p1().id_share("judy").unit.phi;
  const auto s_before = sys.p2().id_share("judy").s;

  auto rr_rng = Rng(2118);
  sys.p1().rerandomize_id_key("judy", rr_rng);

  EXPECT_FALSE(gg.g_eq(sys.p1().id_share("judy").r[0], r_before[0]));
  EXPECT_FALSE(gg.g_eq(sys.p1().id_share("judy").unit.phi, phi_before));
  EXPECT_TRUE(sys.p2().id_share("judy").s == s_before);

  for (int i = 0; i < 5; ++i) {
    const auto m = gg.gt_random(rng);
    const auto ct = sys.scheme().enc(sys.pp(), "judy", m, rng);
    EXPECT_TRUE(gg.gt_eq(sys.decrypt("judy", ct), m));
  }
  // Composes with share refresh.
  sys.refresh_id("judy");
  const auto m = gg.gt_random(rng);
  EXPECT_TRUE(gg.gt_eq(sys.decrypt("judy", sys.scheme().enc(sys.pp(), "judy", m, rng)), m));
}

TEST(DlrIbeTest, SnapshotGrowsWithIdentities) {
  const auto gg = make_mock();
  auto sys = DlrIbeSystem<MockGroup>::create(gg, mock_params(), 16, 2115);
  const auto before = sys.p1().normal_snapshot().bits();
  sys.extract("k1");
  sys.extract("k2");
  const auto after = sys.p1().normal_snapshot().bits();
  EXPECT_GT(after, before);  // Remark 4.1: id-key shares are leakable memory
}

}  // namespace
}  // namespace dlr::schemes
