#include "telemetry/events.hpp"

#include "telemetry/export.hpp"  // json_escape
#include "telemetry/trace.hpp"

namespace dlr::telemetry {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::EpochPrepare: return "epoch-prepare";
    case EventKind::EpochCommit: return "epoch-commit";
    case EventKind::EpochRollback: return "epoch-rollback";
    case EventKind::Reconcile: return "reconcile";
    case EventKind::FaultInjected: return "fault-injected";
    case EventKind::Retry: return "retry";
    case EventKind::Reconnect: return "reconnect";
    case EventKind::DrainTimeout: return "drain-timeout";
    case EventKind::JournalRecovery: return "journal-recovery";
    case EventKind::SlowRequest: return "slow-request";
    case EventKind::Shed: return "shed";
    case EventKind::BreakerOpen: return "breaker-open";
    case EventKind::BreakerClose: return "breaker-close";
    case EventKind::Migrate: return "migrate";
  }
  return "unknown";
}

#if DLR_TELEMETRY_ENABLED

EventLog& EventLog::global() {
  static EventLog e;
  return e;
}

void EventLog::emit(EventKind kind, std::string detail) {
  Event ev;
  ev.kind = kind;
  ev.t_ns = trace_now_ns();
  ev.trace_id = Tracer::global().current().trace_id;
  ev.detail = std::move(detail);
  std::lock_guard<std::mutex> lk(mu_);
  ev.seq = ++total_;
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[(ev.seq - 1) % kCapacity] = std::move(ev);
  }
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (total_ <= ring_.size()) return ring_;
  // Ring wrapped: unroll oldest-first starting at the slot the next emit
  // would overwrite.
  std::vector<Event> out;
  out.reserve(ring_.size());
  const std::size_t head = static_cast<std::size_t>(total_ % kCapacity);
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head + i) % kCapacity]);
  return out;
}

std::uint64_t EventLog::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

void EventLog::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  total_ = 0;
}

std::string EventLog::dump_jsonl() const {
  std::string out;
  for (const auto& e : events()) {
    out += "{\"type\":\"event\",\"seq\":" + std::to_string(e.seq) + ",\"t_ns\":" +
           std::to_string(e.t_ns) + ",\"kind\":\"" + event_kind_name(e.kind) +
           "\",\"trace\":" + std::to_string(e.trace_id) + ",\"detail\":\"" +
           json_escape(e.detail) + "\"}\n";
  }
  return out;
}

#endif  // DLR_TELEMETRY_ENABLED

}  // namespace dlr::telemetry
