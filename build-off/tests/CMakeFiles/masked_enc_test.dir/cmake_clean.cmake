file(REMOVE_RECURSE
  "CMakeFiles/masked_enc_test.dir/masked_enc_test.cpp.o"
  "CMakeFiles/masked_enc_test.dir/masked_enc_test.cpp.o.d"
  "masked_enc_test"
  "masked_enc_test.pdb"
  "masked_enc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masked_enc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
