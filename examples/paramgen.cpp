// paramgen: regenerate (or freshly search for) type-A pairing parameters and
// verify them by constructing the full pairing context, so every hardcoded
// constant in src/group/tate_group.cpp is reproducible from this repo alone.
//
// Usage:
//   ./examples/paramgen              # verify the two built-in presets
//   ./examples/paramgen 224 56 7     # search: q_bits r_bits seed
#include <cstdio>
#include <cstdlib>

#include "group/tate_group.hpp"
#include "mpint/primality.hpp"

namespace {

template <std::size_t LQ, std::size_t LR>
void verify_preset(const dlr::pairing::PairingCtx<LQ, LR>& ctx, int rounds = 40) {
  dlr::crypto::Rng rng(1);
  const bool qp = dlr::mpint::is_probable_prime(ctx.fq().modulus(), rng, rounds);
  const bool rp = dlr::mpint::is_probable_prime(ctx.order(), rng, rounds);
  std::printf("%s: |q| = %zu (prime: %s), |r| = %zu (prime: %s), e(g,g) != 1: yes\n",
              ctx.name().c_str(), ctx.fq().modulus().bit_length(), qp ? "yes" : "NO",
              ctx.order().bit_length(), rp ? "yes" : "NO");
  if (!qp || !rp) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlr;

  if (argc == 4) {
    const auto q_bits = static_cast<std::size_t>(std::atoi(argv[1]));
    const auto r_bits = static_cast<std::size_t>(std::atoi(argv[2]));
    const auto seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
    std::printf("searching: q %zu bits, r %zu bits, seed %llu ...\n", q_bits, r_bits,
                static_cast<unsigned long long>(seed));
    const auto p = mpint::find_type_a_params<8, 3>(q_bits, r_bits, seed);
    std::printf("q = %s\nr = %s\nh = %s\n", p.q.to_hex().c_str(), p.r.to_hex().c_str(),
                p.h.to_hex().c_str());
    // Construct the full context -- validates r*h == q+1, q == 3 mod 4,
    // finds a generator, and checks non-degeneracy.
    pairing::PairingCtx<8, 3> ctx(p.q, p.r, p.h, "generated");
    std::printf("pairing context constructed and self-validated.\n");
    return 0;
  }

  std::printf("verifying built-in presets:\n");
  verify_preset(*pairing::make_ss256());
  verify_preset(*pairing::make_ss512());
  verify_preset(*pairing::make_ss1024(), /*rounds=*/4);  // slow schoolbook powmod
  std::printf("all presets verified.\n");
  return 0;
}
