// Unit tests for the fixed-width multiprecision integer layer.
#include "mpint/uint.hpp"

#include <gtest/gtest.h>

#include "crypto/rng.hpp"

namespace dlr::mpint {
namespace {

using U2 = UInt<2>;
using U4 = UInt<4>;

U4 rand_u4(crypto::Rng& rng, std::size_t bits = 256) {
  Bytes b(32, 0);
  const std::size_t nbytes = (bits + 7) / 8;
  rng.fill(std::span<std::uint8_t>(b.data(), nbytes));
  if (bits % 8 != 0) b[nbytes - 1] &= static_cast<std::uint8_t>(0xff >> (8 - bits % 8));
  return U4::from_bytes(b);
}

TEST(UIntTest, ZeroAndFromU64) {
  EXPECT_TRUE(U4::zero().is_zero());
  EXPECT_FALSE(U4::from_u64(1).is_zero());
  EXPECT_EQ(U4::from_u64(42).limb[0], 42u);
  EXPECT_EQ(U4::from_u64(42).limb[1], 0u);
}

TEST(UIntTest, BitLength) {
  EXPECT_EQ(U4::zero().bit_length(), 0u);
  EXPECT_EQ(U4::from_u64(1).bit_length(), 1u);
  EXPECT_EQ(U4::from_u64(0xff).bit_length(), 8u);
  U4 v{};
  v.limb[3] = 1;
  EXPECT_EQ(v.bit_length(), 193u);
}

TEST(UIntTest, BitAccess) {
  auto v = U4::from_u64(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  v.set_bit(100, true);
  EXPECT_TRUE(v.bit(100));
  v.set_bit(100, false);
  EXPECT_FALSE(v.bit(100));
  EXPECT_FALSE(v.bit(1000));  // out of range reads as 0
}

TEST(UIntTest, Comparison) {
  const auto a = U2::from_u64(5);
  const auto b = U2::from_u64(7);
  U2 c{};
  c.limb[1] = 1;  // 2^64
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, U2::from_u64(5));
}

TEST(UIntTest, AddSubRoundTrip) {
  crypto::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto a = rand_u4(rng, 255);
    const auto b = rand_u4(rng, 255);
    const auto s = a + b;
    EXPECT_EQ(s - b, a);
    EXPECT_EQ(s - a, b);
  }
}

TEST(UIntTest, AddOverflowThrows) {
  U4 max{};
  for (auto& l : max.limb) l = ~0ull;
  EXPECT_THROW((void)(max + U4::from_u64(1)), std::overflow_error);
}

TEST(UIntTest, SubUnderflowThrows) {
  EXPECT_THROW((void)(U4::from_u64(1) - U4::from_u64(2)), std::underflow_error);
}

TEST(UIntTest, MulWideSmall) {
  const auto p = mul_wide(U2::from_u64(7), U2::from_u64(6));
  EXPECT_EQ(p, (UInt<4>::from_u64(42)));
}

TEST(UIntTest, MulWideCrossLimb) {
  U2 a{}, b{};
  a.limb[0] = ~0ull;  // 2^64 - 1
  b.limb[0] = ~0ull;
  const auto p = mul_wide(a, b);  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(p.limb[0], 1ull);
  EXPECT_EQ(p.limb[1], ~0ull - 1);  // 2^64 - 2
  EXPECT_EQ(p.limb[2], 0u);
}

TEST(UIntTest, MulDivRoundTrip) {
  crypto::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto a = rand_u4(rng);
    auto b = rand_u4(rng, 128);
    if (b.is_zero()) b = U4::from_u64(1);
    const auto [q, r] = divmod(a, b);
    EXPECT_LT(r, b);
    // a == q*b + r
    const auto qb = mul_wide(q, b);
    auto recon = resize<8>(r);
    recon = qb + recon;
    EXPECT_EQ(resize<4>(recon), a) << "iteration " << i;
  }
}

TEST(UIntTest, DivByZeroThrows) {
  EXPECT_THROW((void)divmod(U4::from_u64(5), U4::zero()), std::domain_error);
}

TEST(UIntTest, DivSmallDivisor) {
  const auto [q, r] = divmod(U4::from_u64(1000), U4::from_u64(7));
  EXPECT_EQ(q, U4::from_u64(142));
  EXPECT_EQ(r, U4::from_u64(6));
}

TEST(UIntTest, DivNumeratorSmallerThanDenominator) {
  const auto [q, r] = divmod(U4::from_u64(5), U4::from_u64(100));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, U4::from_u64(5));
}

TEST(UIntTest, ShiftLeftRight) {
  crypto::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto a = rand_u4(rng, 200);
    const std::size_t k = rng.below(56);
    EXPECT_EQ(shr(shl(a, k), k), a);
  }
  EXPECT_EQ(shl(U4::from_u64(1), 64).limb[1], 1u);
  EXPECT_EQ(shr(shl(U4::from_u64(1), 200), 200), U4::from_u64(1));
}

TEST(UIntTest, ResizeRoundTripAndOverflow) {
  const auto a = U2::from_u64(12345);
  EXPECT_EQ(resize<2>(resize<4>(a)), a);
  U4 big{};
  big.limb[3] = 7;
  EXPECT_THROW((void)resize<2>(big), std::overflow_error);
}

TEST(UIntTest, BytesRoundTrip) {
  crypto::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto a = rand_u4(rng);
    EXPECT_EQ(U4::from_bytes(a.to_bytes()), a);
  }
  EXPECT_THROW((void)U4::from_bytes(Bytes(7)), std::invalid_argument);
}

TEST(UIntTest, HexFormatting) {
  EXPECT_EQ(U4::zero().to_hex(), "0x0");
  EXPECT_EQ(U4::from_u64(255).to_hex(), "0xff");
  U4 v{};
  v.limb[1] = 0xab;
  EXPECT_EQ(v.to_hex(), "0xab0000000000000000");
}

TEST(UIntTest, ModMatchesDivmod) {
  crypto::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto a = rand_u4(rng);
    auto m = rand_u4(rng, 100);
    if (m.is_zero()) m = U4::from_u64(3);
    EXPECT_EQ(mod(a, m), divmod(a, m).second);
  }
}

TEST(UIntTest, PowmodSlowKnownValues) {
  // 3^20 mod 1000 = 3486784401 mod 1000 = 401
  const auto m = U2::from_u64(1000);
  EXPECT_EQ(powmod_slow(U2::from_u64(3), U2::from_u64(20), m), U2::from_u64(401));
  // Fermat: a^(p-1) = 1 mod p for prime p
  const auto p = U2::from_u64(1000003);
  EXPECT_EQ(powmod_slow(U2::from_u64(2), p - U2::from_u64(1), p), U2::from_u64(1));
}

TEST(UIntTest, MulmodSlowCommutes) {
  crypto::Rng rng(6);
  auto m = rand_u4(rng, 200);
  m.set_bit(0, true);
  for (int i = 0; i < 50; ++i) {
    const auto a = mod(rand_u4(rng), m);
    const auto b = mod(rand_u4(rng), m);
    EXPECT_EQ(mulmod_slow(a, b, m), mulmod_slow(b, a, m));
  }
}

TEST(UIntTest, FromLimbsTooManyThrows) {
  EXPECT_THROW((void)U2::from_limbs({1, 2, 3}), std::invalid_argument);
}

// ---- division known-answer tests, including the Knuth D6 "add back" branch ----

UInt<8> parse_hex(const std::string& s) {
  UInt<8> v{};
  for (std::size_t i = 2; i < s.size(); ++i) {  // skip "0x"
    const char c = s[i];
    const std::uint64_t d = (c >= '0' && c <= '9') ? static_cast<std::uint64_t>(c - '0')
                                                   : static_cast<std::uint64_t>(c - 'a' + 10);
    v = shl(v, 4);
    v.limb[0] |= d;
  }
  return v;
}

TEST(UIntTest, DivisionKnownAnswers) {
  // First three rows are the classic Hacker's Delight divmnu cases that
  // force the rare D6 add-back step; ground truth computed externally.
  struct Case {
    const char *a, *b, *q, *r;
  };
  const Case cases[] = {
      {"0x80000000000000000000", "0x8000fffe0000", "0xfffe0007", "0x7ff5000e0000"},
      {"0x80000000fffffffe00000000", "0x80000000ffffffff", "0xffffffff",
       "0x7fffffffffffffff"},
      {"0x800000000000000000000003", "0x200000000000000000000001", "0x3",
       "0x200000000000000000000000"},
      {"0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
       "0xffffffffffffffffffffffffffffffff", "0x100000000000000000000000000000001", "0x0"},
      {"0x8000000000000000000000000000000000000000000000000000000000000000", "0x3",
       "0x2aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "0x2"},
      {"0x3039", "0x100000000000000000000000000000000000000000000000007", "0x0", "0x3039"},
      {"0xffffffffffffffffffffffffffffffffffffffffffffffff", "0x1",
       "0xffffffffffffffffffffffffffffffffffffffffffffffff", "0x0"},
  };
  for (const auto& c : cases) {
    const auto a = parse_hex(c.a);
    const auto b = parse_hex(c.b);
    const auto [q, r] = divmod(a, b);
    EXPECT_EQ(q, parse_hex(c.q)) << c.a << " / " << c.b;
    EXPECT_EQ(resize<8>(r), parse_hex(c.r)) << c.a << " % " << c.b;
  }
}

}  // namespace
}  // namespace dlr::mpint
