#include "telemetry/metrics.hpp"

#include <algorithm>

namespace dlr::telemetry {

std::string render_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

std::vector<double> default_time_bounds_ms() {
  return {0.001, 0.01, 0.1, 1, 5, 10, 50, 100, 500, 1000, 5000};
}

#if DLR_TELEMETRY_ENABLED

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_time_bounds_ms();
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lk(mu_);
  ++buckets_[idx];
  sum_ += v;
  ++count_;
}

HistogramRow Histogram::row(std::string name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return HistogramRow{std::move(name), bounds_, buckets_, sum_, count_};
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sum_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  sum_ = 0;
  count_ = 0;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::string key = render_name(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = render_name(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds,
                               const Labels& labels) {
  const std::string key = render_name(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [k, c] : counters_) s.counters.push_back({k, c->value()});
  s.gauges.reserve(gauges_.size());
  for (const auto& [k, g] : gauges_) s.gauges.push_back({k, g->value()});
  s.histograms.reserve(histograms_.size());
  for (const auto& [k, h] : histograms_) s.histograms.push_back(h->row(k));
  return s;
}

std::uint64_t Registry::counter_value(const std::string& rendered) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(rendered);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(const std::string& rendered) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(rendered);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::uint64_t Registry::sum_counters(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it)
    total += it->second->value();
  return total;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [k, c] : counters_) c->reset();
  for (auto& [k, g] : gauges_) g->reset();
  for (auto& [k, h] : histograms_) h->reset();
}

#endif  // DLR_TELEMETRY_ENABLED

}  // namespace dlr::telemetry
