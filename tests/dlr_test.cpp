// End-to-end tests of the DLR DPKE (Construction 5.3): algorithm correctness,
// the 2-party decryption and refresh protocols, refresh invariants, both P1
// storage modes, transcript structure, and secret-memory snapshots.
#include <gtest/gtest.h>

#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_tate_ss256;
using group::MockGroup;
using Tate = group::TateSS256;

DlrParams mock_params(std::size_t lambda = 0) {
  // Mock group order ~2^61; lambda defaults to log p.
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), lambda == 0 ? gg.scalar_bits() : lambda);
}

// ---- algorithms ---------------------------------------------------------------

TEST(DlrCoreTest, GenProducesConsistentSharing) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(1000);
  const auto kg = DlrCore<MockGroup>::gen(gg, prm, rng);
  EXPECT_EQ(kg.sk1.a.size(), prm.ell);
  EXPECT_EQ(kg.sk2.s.size(), prm.ell);
  // Phi / prod a^s == msk, and pk.z == e(g,g2)^alpha == e(g^alpha, g2).
  EXPECT_TRUE(gg.g_eq(DlrCore<MockGroup>::reconstruct_msk(gg, kg.sk1, kg.sk2), kg.msk));
}

TEST(DlrCoreTest, EncDecReference) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(1001);
  const auto kg = DlrCore<MockGroup>::gen(gg, prm, rng);
  for (int i = 0; i < 50; ++i) {
    const auto m = gg.gt_random(rng);
    const auto c = DlrCore<MockGroup>::enc(gg, kg.pk, m, rng);
    EXPECT_TRUE(gg.gt_eq(DlrCore<MockGroup>::dec_reference(gg, kg.sk1, kg.sk2, c), m));
  }
}

TEST(DlrCoreTest, EncIsRandomized) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(1002);
  const auto kg = DlrCore<MockGroup>::gen(gg, prm, rng);
  const auto m = gg.gt_random(rng);
  const auto c1 = DlrCore<MockGroup>::enc(gg, kg.pk, m, rng);
  const auto c2 = DlrCore<MockGroup>::enc(gg, kg.pk, m, rng);
  EXPECT_FALSE(gg.g_eq(c1.a, c2.a));
}

TEST(DlrCoreTest, EncWithTDeterministic) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(1003);
  const auto kg = DlrCore<MockGroup>::gen(gg, prm, rng);
  const auto m = gg.gt_random(rng);
  const auto t = gg.sc_random(rng);
  const auto c1 = DlrCore<MockGroup>::enc_with_t(gg, kg.pk, m, t);
  const auto c2 = DlrCore<MockGroup>::enc_with_t(gg, kg.pk, m, t);
  EXPECT_TRUE(gg.g_eq(c1.a, c2.a));
  EXPECT_TRUE(gg.gt_eq(c1.b, c2.b));
}

TEST(DlrCoreTest, CiphertextSerialization) {
  const auto gg = make_mock();
  Rng rng(1004);
  const auto kg = DlrCore<MockGroup>::gen(gg, mock_params(), rng);
  const auto m = gg.gt_random(rng);
  const auto c = DlrCore<MockGroup>::enc(gg, kg.pk, m, rng);
  ByteWriter w;
  DlrCore<MockGroup>::ser_ciphertext(gg, w, c);
  EXPECT_EQ(w.size(), DlrCore<MockGroup>::ciphertext_bytes(gg));
  ByteReader r(w.bytes());
  const auto c2 = DlrCore<MockGroup>::deser_ciphertext(gg, r);
  EXPECT_TRUE(gg.g_eq(c.a, c2.a));
  EXPECT_TRUE(gg.gt_eq(c.b, c2.b));
}

TEST(DlrCoreTest, PairCtTransportsCiphertexts) {
  const auto gg = make_mock();
  Rng rng(1005);
  HpskeG<MockGroup> hg(gg, 4);
  HpskeGT<MockGroup> ht(gg, 4);
  const auto sigma = hg.gen(rng);
  const auto m = gg.g_random(rng);
  const auto ct = hg.enc(sigma, m, rng);
  const auto a = gg.g_random(rng);
  const auto ct_t = DlrCore<MockGroup>::pair_ct(gg, a, ct);
  typename HpskeGT<MockGroup>::SecretKey sigma_t{sigma.s};
  EXPECT_TRUE(gg.gt_eq(ht.dec(sigma_t, ct_t), gg.pair(a, m)));
}

// ---- distributed protocols ------------------------------------------------------

template <group::BilinearGroup GG>
void protocol_battery(const GG& gg, const DlrParams& prm, P1Mode mode, std::uint64_t seed,
                      int periods, int msgs_per_period) {
  auto sys = DlrSystem<GG>::create(gg, prm, mode, seed);
  Rng rng(seed + 999);
  for (int t = 0; t < periods; ++t) {
    for (int k = 0; k < msgs_per_period; ++k) {
      const auto m = gg.gt_random(rng);
      const auto c = DlrCore<GG>::enc(gg, sys.pk(), m, rng);
      EXPECT_TRUE(gg.gt_eq(sys.decrypt(c), m)) << "period " << t << " msg " << k;
    }
    sys.refresh();
  }
  // Still correct after all those refreshes.
  const auto m = gg.gt_random(rng);
  const auto c = DlrCore<GG>::enc(gg, sys.pk(), m, rng);
  EXPECT_TRUE(gg.gt_eq(sys.decrypt(c), m));
}

TEST(DlrProtocolTest, DecryptAndRefreshMockPlain) {
  protocol_battery(make_mock(), mock_params(), P1Mode::Plain, 1100, 10, 3);
}
TEST(DlrProtocolTest, DecryptAndRefreshMockCompact) {
  protocol_battery(make_mock(), mock_params(), P1Mode::Compact, 1101, 10, 3);
}
TEST(DlrProtocolTest, DecryptAndRefreshTatePlain) {
  const auto gg = make_tate_ss256();
  protocol_battery(gg, DlrParams::derive(gg.scalar_bits(), 32), P1Mode::Plain, 1102, 2, 1);
}
TEST(DlrProtocolTest, DecryptAndRefreshTateCompact) {
  const auto gg = make_tate_ss256();
  protocol_battery(gg, DlrParams::derive(gg.scalar_bits(), 32), P1Mode::Compact, 1103, 2, 1);
}

class DlrLambdaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DlrLambdaSweep, ProtocolCorrectAcrossLambda) {
  protocol_battery(make_mock(), mock_params(GetParam()), P1Mode::Plain, 1200 + GetParam(), 3,
                   1);
  protocol_battery(make_mock(), mock_params(GetParam()), P1Mode::Compact,
                   1300 + GetParam(), 3, 1);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, DlrLambdaSweep,
                         ::testing::Values(1, 16, 61, 128, 400, 1024));

// ---- refresh semantics ------------------------------------------------------------

TEST(DlrRefreshTest, SharesChangeButMskInvariant) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 1400);
  const auto sk1_0 = sys.p1().share();
  const auto sk2_0 = sys.p2().share();
  const auto msk0 = DlrCore<MockGroup>::reconstruct_msk(gg, sk1_0, sk2_0);
  for (int t = 0; t < 5; ++t) {
    sys.refresh();
    const auto& sk1 = sys.p1().share();
    const auto& sk2 = sys.p2().share();
    // The refresh is a *re-sharing*: same msk, fresh shares.
    EXPECT_TRUE(gg.g_eq(DlrCore<MockGroup>::reconstruct_msk(gg, sk1, sk2), msk0));
    EXPECT_FALSE(sk2.s == sk2_0.s);
    EXPECT_FALSE(gg.g_eq(sk1.phi, sk1_0.phi));
  }
}

TEST(DlrRefreshTest, CompactModeMskInvariant) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Compact, 1401);
  const auto msk0 = DlrCore<MockGroup>::reconstruct_msk(gg, sys.p1().recover_share_for_test(),
                                                        sys.p2().share());
  for (int t = 0; t < 5; ++t) {
    sys.refresh();
    EXPECT_TRUE(gg.g_eq(DlrCore<MockGroup>::reconstruct_msk(
                            gg, sys.p1().recover_share_for_test(), sys.p2().share()),
                        msk0));
  }
}

TEST(DlrRefreshTest, PublicKeyUnchangedForever) {
  const auto gg = make_mock();
  auto sys = DlrSystem<MockGroup>::create(gg, mock_params(), P1Mode::Plain, 1402);
  const auto z0 = sys.pk().z;
  for (int t = 0; t < 20; ++t) sys.refresh();
  EXPECT_TRUE(gg.gt_eq(sys.pk().z, z0));
}

// ---- transcript structure -----------------------------------------------------------

TEST(DlrTranscriptTest, PeriodTranscriptShape) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 1500);
  Rng rng(1501);
  const auto m = gg.gt_random(rng);
  const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
  const auto rec = sys.run_period(c);
  EXPECT_TRUE(gg.gt_eq(rec.dec_output, m));
  ASSERT_EQ(rec.transcript.count(), 4u);  // dec.r1, dec.r2, ref.r1, ref.r2
  const auto& ms = rec.transcript.messages();
  EXPECT_EQ(ms[0].label, "dec.r1");
  EXPECT_EQ(ms[0].from, net::DeviceId::P1);
  EXPECT_EQ(ms[1].label, "dec.r2");
  EXPECT_EQ(ms[1].from, net::DeviceId::P2);
  EXPECT_EQ(ms[2].label, "ref.r1");
  EXPECT_EQ(ms[3].label, "ref.r2");

  // Message sizes match the construction: dec.r1 carries l+2 GT-HPSKE
  // ciphertexts, ref.r1 carries 2l+1 G-HPSKE ciphertexts, replies carry 1.
  const std::size_t ct_gt = (prm.kappa + 1) * gg.gt_bytes();
  const std::size_t ct_g = (prm.kappa + 1) * gg.g_bytes();
  EXPECT_EQ(ms[0].size_bytes(), (prm.ell + 2) * ct_gt);
  EXPECT_EQ(ms[1].size_bytes(), ct_gt);
  EXPECT_EQ(ms[2].size_bytes(), (2 * prm.ell + 1) * ct_g);
  EXPECT_EQ(ms[3].size_bytes(), ct_g);
}

TEST(DlrTranscriptTest, TrailingBytesRejected) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 1502);
  Rng rng(1503);
  const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), gg.gt_random(rng), rng);
  auto msg1 = sys.p1().dec_round1(c);
  auto msg1_bad = msg1;
  msg1_bad.push_back(0);
  EXPECT_THROW((void)sys.p2().dec_respond(msg1_bad), std::invalid_argument);
  auto reply = sys.p2().dec_respond(msg1);
  auto reply_bad = reply;
  reply_bad.push_back(0);
  EXPECT_THROW((void)sys.p1().dec_finish(reply_bad), std::invalid_argument);
}

// ---- P2 operation profile (Section 1.1 "simplicity of P2") ---------------------------

TEST(DlrOpsTest, P2DoesOnlyPowAndMul) {
  using CG = group::CountingGroup<MockGroup>;
  static_assert(group::BilinearGroup<CG>);
  CG counting(make_mock());
  const auto prm = mock_params();
  Rng rng(1600);
  auto kg = DlrCore<CG>::gen(counting, prm, rng);
  DlrParty1<CG> p1(counting, prm, kg.pk, std::move(kg.sk1), P1Mode::Plain,
                   Rng(1601));
  CG counting_p2(make_mock());
  DlrParty2<CG> p2(counting_p2, prm, std::move(kg.sk2), Rng(1602));

  const auto m = counting.gt_random(rng);
  const auto c = DlrCore<CG>::enc(counting, kg.pk, m, rng);
  const auto msg1 = p1.dec_round1(c);
  (void)p2.dec_respond(msg1);
  const auto msg2 = p1.ref_round1();
  (void)p2.ref_respond(msg2);

  const auto& ops = counting_p2.counts();
  EXPECT_EQ(ops.pairings, 0u);          // P2 never pairs
  EXPECT_EQ(ops.g_random, 0u);          // P2 never samples group elements
  EXPECT_EQ(ops.gt_random, 0u);
  EXPECT_EQ(ops.hash_to_g, 0u);
  // It exponentiates (via multi-exponentiation chains) and multiplies.
  EXPECT_GT(ops.exps() + ops.multi_pows, 0u);
  EXPECT_GT(ops.multi_pow_terms, 0u);
  EXPECT_GT(ops.muls(), 0u);
  EXPECT_EQ(ops.sc_random, prm.ell);    // and samples l fresh scalars (s')
}

TEST(DlrOpsTest, EncryptionCostMatchesFootnote3) {
  // Footnote 3: DLR encryption = 2 exponentiations, 0 pairings (e(g1,g2) is
  // in the public key), ciphertext = 2 group elements.
  using CG = group::CountingGroup<MockGroup>;
  CG counting(make_mock());
  const auto prm = mock_params();
  Rng rng(1603);
  const auto kg = DlrCore<CG>::gen(counting, prm, rng);
  counting.reset_counts();
  const auto m = counting.gt_random(rng);
  counting.reset_counts();
  (void)DlrCore<CG>::enc(counting, kg.pk, m, rng);
  const auto& ops = counting.counts();
  EXPECT_EQ(ops.exps(), 2u);
  EXPECT_EQ(ops.pairings, 0u);
  EXPECT_EQ(ops.muls(), 1u);
}

// ---- secret memory ---------------------------------------------------------------------

TEST(DlrSnapshotTest, SnapshotSizesMatchAccounting) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  for (auto mode : {P1Mode::Plain, P1Mode::Compact}) {
    auto sys = DlrSystem<MockGroup>::create(gg, prm, mode, 1700);
    Rng rng(1701);
    const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), gg.gt_random(rng), rng);
    (void)sys.run_period(c);
    // P2's normal snapshot is exactly the share: l scalars.
    EXPECT_EQ(sys.p2().normal_snapshot().bits(), prm.ell * 8 * gg.sc_bytes());
    // P2's refresh snapshot holds both shares.
    EXPECT_EQ(sys.p2().refresh_snapshot().bits(), 2 * prm.ell * 8 * gg.sc_bytes());
    EXPECT_EQ(sys.p2().secret_bits(net::Phase::Normal), prm.ell * 8 * gg.sc_bytes());
    EXPECT_EQ(sys.p2().secret_bits(net::Phase::Refresh), 2 * prm.ell * 8 * gg.sc_bytes());
    // P1 refresh memory is about double its normal memory.
    const auto n1 = sys.p1().secret_bits(net::Phase::Normal);
    const auto r1 = sys.p1().secret_bits(net::Phase::Refresh);
    EXPECT_GT(r1, n1);
    EXPECT_LE(r1, 2 * n1 + 8 * gg.g_bytes() + 8 * gg.sc_bytes());
  }
}

TEST(DlrSnapshotTest, CompactModeSecretIsSmall) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto plain = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 1702);
  auto compact = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Compact, 1703);
  // Compact P1 memory = kappa*log p + scratch << plain P1 memory (~l group
  // elements) -- the whole point of the optimal-leakage-rate remark.
  EXPECT_LT(compact.p1().secret_bits(net::Phase::Normal),
            plain.p1().secret_bits(net::Phase::Normal));
}

TEST(DlrSnapshotTest, GenRandomnessNonEmpty) {
  const auto gg = make_mock();
  auto sys = DlrSystem<MockGroup>::create(gg, mock_params(), P1Mode::Plain, 1704);
  EXPECT_GT(sys.gen_randomness().size(), 0u);
}

// ---- failure injection --------------------------------------------------------------------

TEST(DlrFailureTest, BadShareWidthRejected) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  Rng rng(1800);
  auto kg = DlrCore<MockGroup>::gen(gg, prm, rng);
  kg.sk1.a.pop_back();
  EXPECT_THROW(DlrParty1<MockGroup>(gg, prm, kg.pk, kg.sk1, P1Mode::Plain, Rng(1)),
               std::invalid_argument);
  kg.sk2.s.pop_back();
  EXPECT_THROW(DlrParty2<MockGroup>(gg, prm, kg.sk2, Rng(2)), std::invalid_argument);
}

TEST(DlrFailureTest, TamperedCiphertextDecryptsToGarbage) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 1801);
  Rng rng(1802);
  const auto m = gg.gt_random(rng);
  auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
  c.b = gg.gt_mul(c.b, gg.gt_gen());  // malleate
  const auto out = sys.decrypt(c);
  EXPECT_FALSE(gg.gt_eq(out, m));
  EXPECT_TRUE(gg.gt_eq(out, gg.gt_mul(m, gg.gt_gen())));  // CPA schemes are malleable
}

}  // namespace
}  // namespace dlr::schemes
