// The CCA2 variant of the continual-memory-leakage game (end of Section 3.3):
// identical to the CPA game, except the adversary additionally gets a
// decryption oracle -- usable before *and* after the challenge -- restricted
// only in that it refuses the challenge ciphertext itself. Leakage, as in the
// CPA game, happens only before the challenge.
#pragma once

#include "leakage/game.hpp"
#include "schemes/dlr_cca2.hpp"

namespace dlr::leakage {

template <group::BilinearGroup GG>
class Cca2CmlGame {
 public:
  using Sys = schemes::DlrCca2System<GG>;
  using GT = typename GG::GT;
  using Ciphertext = typename Sys::Ciphertext;

  struct Config {
    schemes::DlrParams prm;
    std::size_t id_bits = 32;
    std::size_t b1 = 0;  // 0 -> lambda
    std::size_t b2 = 0;  // 0 -> serialized |sk2|
    std::uint64_t seed = 0;
  };

  using LeakagePlan = typename CmlGame<GG>::LeakagePlan;

  struct PeriodView {
    Bytes l1, l1_ref, l2, l2_ref;
  };

  struct View {
    const typename Sys::Ibe::Bb::PublicParams* pp = nullptr;
    std::vector<PeriodView> periods;
  };

  /// The decryption oracle handed to the adversary. Counts queries and
  /// refuses the challenge ciphertext once it exists.
  class Oracle {
   public:
    std::optional<GT> decrypt(const Ciphertext& ct) {
      ++queries_;
      if (challenge_ && game_->same_ciphertext(ct, **challenge_))
        throw std::logic_error("CCA2 oracle: challenge ciphertext refused");
      return game_->sys_->decrypt(ct);
    }
    [[nodiscard]] std::size_t queries() const { return queries_; }

   private:
    friend class Cca2CmlGame;
    Cca2CmlGame* game_ = nullptr;
    std::optional<const Ciphertext*> challenge_;
    std::size_t queries_ = 0;
  };

  class Adversary {
   public:
    virtual ~Adversary() = default;
    virtual bool wants_more_leakage(const View& view) = 0;
    virtual LeakagePlan plan(std::size_t t, const View& view, Oracle& oracle) = 0;
    virtual std::pair<GT, GT> choose_messages(const View& view, crypto::Rng& rng) = 0;
    virtual int guess(const View& view, const Ciphertext& challenge, Oracle& oracle) = 0;
  };

  struct Result {
    bool adversary_won = false;
    bool aborted = false;
    std::size_t periods = 0;
    std::size_t oracle_queries = 0;
  };

  Cca2CmlGame(GG gg, Config cfg) : gg_(std::move(gg)), cfg_(cfg) {
    if (cfg_.b1 == 0) cfg_.b1 = cfg_.prm.b1_bits();
    if (cfg_.b2 == 0) cfg_.b2 = 8 * cfg_.prm.ell * gg_.sc_bytes();
  }

  Result run(Adversary& adv) {
    Result res;
    crypto::Rng root(cfg_.seed);
    auto sys = Sys::create(gg_, cfg_.prm, cfg_.id_bits, cfg_.seed + 1);
    sys_ = &sys;

    Oracle oracle;
    oracle.game_ = this;

    View view;
    view.pp = &sys.pp();
    LeakageBudget budget1(cfg_.b1, "P1"), budget2(cfg_.b2, "P2");

    std::size_t t = 0;
    auto bg_rng = root.fork("background");
    while (adv.wants_more_leakage(view)) {
      const auto plan = adv.plan(t, view, oracle);
      if (!budget1.charge_period(plan.bits1, plan.bits1_ref) ||
          !budget2.charge_period(plan.bits2, plan.bits2_ref)) {
        res.aborted = true;
        res.periods = t;
        return res;
      }
      // Background decryption + msk refresh, as in the CPA game.
      const auto bg =
          Sys::enc(sys.ibe().scheme(), sys.pp(), gg_.gt_random(bg_rng), bg_rng);
      (void)sys.decrypt(bg);
      const Bytes snap1 = sys.ibe().p1().normal_snapshot().all();
      const Bytes snap2 = sys.ibe().p2().normal_snapshot().all();
      sys.refresh_msk();

      PeriodView pv;
      pv.l1 = eval_leakage(plan.h1, snap1, {}, plan.bits1).data;
      pv.l2 = eval_leakage(plan.h2, snap2, {}, plan.bits2).data;
      pv.l1_ref =
          eval_leakage(plan.h1_ref, sys.ibe().p1().refresh_snapshot().all(), {}, plan.bits1_ref)
              .data;
      pv.l2_ref =
          eval_leakage(plan.h2_ref, sys.ibe().p2().refresh_snapshot().all(), {}, plan.bits2_ref)
              .data;
      view.periods.push_back(std::move(pv));
      ++t;
    }
    res.periods = t;

    auto challenge_rng = root.fork("challenge");
    const auto [m0, m1] = adv.choose_messages(view, challenge_rng);
    const int b = challenge_rng.coin() ? 1 : 0;
    const auto challenge =
        Sys::enc(sys.ibe().scheme(), sys.pp(), b == 0 ? m0 : m1, challenge_rng);
    oracle.challenge_ = &challenge;

    const int guess = adv.guess(view, challenge, oracle);
    res.adversary_won = (guess == b);
    res.oracle_queries = oracle.queries();
    sys_ = nullptr;
    return res;
  }

  [[nodiscard]] bool same_ciphertext(const Ciphertext& a, const Ciphertext& b) const {
    if (!(a.vk == b.vk)) return false;
    ByteWriter wa, wb;
    // sys_ is live whenever the oracle runs.
    sys_->ibe().scheme().bb().ser_ciphertext(wa, a.inner);
    sys_->ibe().scheme().bb().ser_ciphertext(wb, b.inner);
    return wa.bytes() == wb.bytes() &&
           Sys::Ots::serialize_sig(a.sig) == Sys::Ots::serialize_sig(b.sig);
  }

 private:
  friend class Oracle;
  GG gg_;
  Config cfg_;
  Sys* sys_ = nullptr;
};

}  // namespace dlr::leakage
