// Pi_comm -- homomorphic proxy secret key encryption (HPSKE, Definition 5.1),
// concrete construction of Lemma 5.2:
//
//   sk_comm = (sigma_1..sigma_kappa);  Enc'(m) = (b_1..b_kappa, m*prod b^sigma)
//
// Required properties:
//  (1) coordinate-wise ciphertext product decrypts to the plaintext product
//      (MaskedEnc::ct_mul); this lets P2 operate on P1's encrypted share
//      without knowing sk_comm ("proxy").
//  (2) l uniform plaintexts keep >= log p + 2 log(1/eps) pseudo average
//      min-entropy given their ciphertexts and lambda bits of leakage on
//      (sk_comm, plaintexts, coins) -- under the 2Lin assumption. The
//      entropy accounting behind this bound is implemented in
//      leakage/rates.hpp; statistical evidence on tiny groups is produced by
//      bench_f8_refresh_distribution.
//
// A "HPSKE for l, G, GT" is this construction over both element spaces; the
// decryption protocol transports a G-ciphertext to a GT-ciphertext of the
// paired plaintext via coordinate-wise pairing (Dlr::pair_ct).
#pragma once

#include "schemes/masked_enc.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
using HpskeG = MaskedEnc<GG, SpaceG>;

template <group::BilinearGroup GG>
using HpskeGT = MaskedEnc<GG, SpaceGT>;

}  // namespace dlr::schemes
