file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_cca2_overhead.dir/bench_f4_cca2_overhead.cpp.o"
  "CMakeFiles/bench_f4_cca2_overhead.dir/bench_f4_cca2_overhead.cpp.o.d"
  "bench_f4_cca2_overhead"
  "bench_f4_cca2_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_cca2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
