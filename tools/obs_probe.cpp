// obs_probe: CI driver for the observability plane (DESIGN.md §10).
//
// Boots a mock-group decryption service with the admin endpoint enabled,
// issues N decryptions (with one refresh in the middle so epoch events
// appear), then exercises every admin route the way an operator would:
//
//   1. scrape adm.metrics and run the strict Prometheus lint on the body;
//   2. parse the exposition and check svc_requests == N (the acceptance
//      criterion: the scrape agrees with the work actually issued);
//   3. fetch adm.health and sanity-check the JSON mentions both parties;
//   4. dump adm.events and require the epoch prepare/commit pair;
//   5. dump adm.spans and require a traced server-side svc.dec span.
//
// Prints everything it checked; exits 0 only if all checks hold, making it a
// single CI step. `--requests N` scales the workload, `--dump` prints the
// fetched bodies (the artifact to attach on failure).
#include <cstdio>
#include <cstring>
#include <string>

#include "group/mock_group.hpp"
#include "service/admin.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"
#include "telemetry/export.hpp"

using namespace dlr;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("%s %s\n", ok ? "ok  " : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 8;
  bool dump = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--dump") == 0)
      dump = true;
  }

  auto gg = group::make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  crypto::Rng rng(42);
  auto kg = Core::gen(gg, prm, rng);

  service::P2Server<MockGroup>::Options sopt;
  sopt.workers = 2;
  sopt.admin = true;
  service::P2Server<MockGroup> server(gg, prm, kg.sk2, crypto::Rng(43), sopt);
  server.start();

  auto p1 = std::make_shared<service::P1Runtime<MockGroup>>(
      gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain, crypto::Rng(44));
  p1->register_admin(*server.admin());
  service::DecryptionClient<MockGroup> client(p1, server.port());

  for (int i = 0; i < requests; ++i) {
    if (i == requests / 2) client.refresh();
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kg.pk, m, rng);
    check(gg.gt_eq(client.decrypt(c), m), "decrypt #" + std::to_string(i));
  }

  const auto port = server.admin_port();
  std::printf("admin endpoint on port %u\n", port);

  const std::string metrics = service::AdminClient::fetch(port, service::kAdmMetrics);
  if (dump) std::fputs(metrics.c_str(), stdout);
  const std::string lint = telemetry::prometheus_lint(metrics);
  check(lint.empty(), "prometheus lint" + (lint.empty() ? "" : ": " + lint));

  const auto samples = telemetry::parse_prometheus(metrics);
  const auto it = samples.find("svc_requests");
#if DLR_TELEMETRY_ENABLED
  check(it != samples.end() &&
            it->second == static_cast<double>(requests),
        "svc_requests == " + std::to_string(requests) +
            (it == samples.end() ? " (sample missing)"
                                 : " (got " + std::to_string(it->second) + ")"));
#else
  check(it == samples.end(), "telemetry off: no svc_requests sample");
#endif

  const std::string health = service::AdminClient::fetch(port, service::kAdmHealth);
  if (dump) std::printf("%s\n", health.c_str());
  check(health.find("\"p2\"") != std::string::npos, "health has a p2 section");
  check(health.find("\"p1\"") != std::string::npos, "health has a p1 section");
  check(health.find("\"epoch\":\"1\"") != std::string::npos,
        "health shows the post-refresh epoch");

  const std::string events = service::AdminClient::fetch(port, service::kAdmEvents);
  if (dump) std::fputs(events.c_str(), stdout);
#if DLR_TELEMETRY_ENABLED
  check(events.find("\"kind\":\"epoch-prepare\"") != std::string::npos,
        "event log has epoch-prepare");
  check(events.find("\"kind\":\"epoch-commit\"") != std::string::npos,
        "event log has epoch-commit");

  const std::string spans = service::AdminClient::fetch(port, service::kAdmSpans);
  const auto imported = telemetry::import_jsonl(spans);
  bool traced_dec = false;
  for (const auto& s : imported.spans)
    if (s.label == "svc.dec" && s.trace_id != 0) traced_dec = true;
  check(traced_dec, "server exported a traced svc.dec span");
#endif

  client.close();
  server.stop();
  std::printf("obs_probe: %d failure(s)\n", g_failures);
  return g_failures ? 1 : 0;
}
