file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_ibe.dir/bench_f7_ibe.cpp.o"
  "CMakeFiles/bench_f7_ibe.dir/bench_f7_ibe.cpp.o.d"
  "bench_f7_ibe"
  "bench_f7_ibe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_ibe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
