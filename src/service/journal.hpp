// Atomic single-record on-disk journal for party state.
//
// One Journal owns one path and stores one record (the latest durable state
// of a party: share + epoch + any PendingRefresh). save() is crash-atomic in
// the classic way -- write `<path>.tmp`, fsync the file, rename over the
// target, fsync the directory -- so a reader after any crash sees either the
// previous complete record or the new complete record, never a torn one.
//
// On-disk framing guards against partial/bit-rotted files surviving the
// rename discipline anyway (e.g. a crashed tmp write that an operator
// renames by hand):
//
//   "DLRJ" | u8 version | u32 crc32(payload) | u64 payload_len | payload
//
// load() returns nullopt for a missing file and for any framing/CRC
// violation (counted in svc.journal_corrupt) -- a corrupt journal is
// equivalent to no journal, and the party falls back to its constructor
// state. A default-constructed Journal is detached: save/load/remove are
// no-ops, which is how the in-memory-only configuration (tests, benches)
// opts out of persistence.
#pragma once

#include <optional>
#include <string>

#include "crypto/bytes.hpp"

namespace dlr::service {

class Journal {
 public:
  Journal() = default;  // detached: no persistence
  explicit Journal(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] bool attached() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Durably replace the record. Throws std::runtime_error on I/O failure
  /// (a party that cannot journal must not mutate its share).
  void save(const Bytes& payload) const;

  /// The last durably saved record, or nullopt (missing/corrupt/detached).
  [[nodiscard]] std::optional<Bytes> load() const;

  /// Delete the record (missing file is fine).
  void remove() const;

 private:
  std::string path_;
};

/// mkdir(dir) if absent (single level; EEXIST is success). Returns dir so
/// call sites can inline it when building journal paths.
const std::string& ensure_dir(const std::string& dir);

/// dir + "/" + name, tolerating a trailing slash on dir.
[[nodiscard]] std::string join_path(const std::string& dir, const std::string& name);

}  // namespace dlr::service
