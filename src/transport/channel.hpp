// MuxChannel -- the adapter that makes a mux session look like the in-process
// net::Channel, so scheme protocol code (Bytes-in/Bytes-out party methods
// driven through a recording channel) runs over a real socket unchanged.
//
//   * send(from, ...) with from == the local device transmits the message as
//     a Data frame AND records it in the transcript (the public-channel
//     contract of Section 3.2 -- both directions appear in comm^t).
//   * recv() blocks for the peer's next frame, records it in the transcript
//     under the peer's device id, and returns the body by reference exactly
//     like the in-process Channel::send does for the consuming side.
//
// An Error frame received where a Data frame was expected surfaces as a
// TransportError(Protocol) carrying the frame's label+body in what() -- the
// service layer decodes richer errors itself before they reach this point.
#pragma once

#include "net/transcript.hpp"
#include "transport/mux.hpp"

namespace dlr::transport {

class MuxChannel final : public net::Channel {
 public:
  MuxChannel(SessionMux::Session& session, net::DeviceId local)
      : session_(session), local_(local) {}

  [[nodiscard]] net::DeviceId local() const { return local_; }
  [[nodiscard]] net::DeviceId peer() const {
    return local_ == net::DeviceId::P1 ? net::DeviceId::P2 : net::DeviceId::P1;
  }

  /// Local messages go over the wire and into the transcript; a message
  /// attributed to the peer is record-only (it already traveled -- this arm
  /// exists so in-process driver code that replays both sides still works).
  const Bytes& send(net::DeviceId from, std::string label, Bytes body) override {
    if (from == local_)
      session_.send(FrameType::Data, static_cast<std::uint8_t>(from), label, body);
    return record(from, std::move(label), std::move(body));
  }

  /// Receive the peer's next protocol message; records it and returns the
  /// body for consumption (mirror of the in-process rendezvous).
  const Bytes& recv(std::optional<Millis> timeout = std::nullopt) {
    Frame f = session_.recv(timeout);
    if (f.type != FrameType::Data)
      throw TransportError(Errc::Protocol,
                           "expected Data frame, got type " +
                               std::to_string(static_cast<int>(f.type)) + " label '" +
                               f.label + "'");
    const auto from = f.from == 0 ? peer() : static_cast<net::DeviceId>(f.from);
    return record(from, std::move(f.label), std::move(f.body));
  }

 private:
  SessionMux::Session& session_;
  net::DeviceId local_;
};

}  // namespace dlr::transport
