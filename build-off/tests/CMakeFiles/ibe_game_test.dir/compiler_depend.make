# Empty compiler generated dependencies file for ibe_game_test.
# This may be replaced when dependencies are built.
