// F6 -- substrate microbenchmarks (google-benchmark): field, curve, pairing,
// HPSKE, hash and RNG primitives on both curve presets. These are the cost
// constants every protocol-level number in T1/F2/F4/F5/F7 decomposes into.
#include <benchmark/benchmark.h>

#include "group/fixed_pow.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"
#include "schemes/hpske.hpp"

namespace {

using namespace dlr;

template <class GG>
struct Fixture {
  GG gg;
  crypto::Rng rng{12345};
  typename GG::G p, q;
  typename GG::GT z;
  typename GG::Scalar s;

  explicit Fixture(GG g) : gg(std::move(g)) {
    p = gg.g_random(rng);
    q = gg.g_random(rng);
    z = gg.gt_random(rng);
    s = gg.sc_random(rng);
  }
};

Fixture<group::TateSS256>& f256() {
  static Fixture<group::TateSS256> f(group::make_tate_ss256());
  return f;
}
Fixture<group::TateSS512>& f512() {
  static Fixture<group::TateSS512> f(group::make_tate_ss512());
  return f;
}
Fixture<group::TateSS1024>& f1024() {
  static Fixture<group::TateSS1024> f(group::make_tate_ss1024());
  return f;
}

template <class F>
void bench_pairing(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.pair(f.p, f.q));
}
template <class F>
void bench_g_pow(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_pow(f.p, f.s));
}
template <class F>
void bench_gt_pow(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.gt_pow(f.z, f.s));
}
template <class F>
void bench_g_mul(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_mul(f.p, f.q));
}
template <class F>
void bench_g_random(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_random(f.rng));
}
template <class F>
void bench_gt_random(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.gt_random(f.rng));
}
template <class F>
void bench_hash_to_g(benchmark::State& state, F& f) {
  Bytes data{1, 2, 3, 4};
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    data[0] = static_cast<std::uint8_t>(ctr++);
    benchmark::DoNotOptimize(f.gg.hash_to_g(data));
  }
}

void register_group_benches() {
  benchmark::RegisterBenchmark("ss256/pairing", [](benchmark::State& s) { bench_pairing(s, f256()); });
  benchmark::RegisterBenchmark("ss512/pairing", [](benchmark::State& s) { bench_pairing(s, f512()); });
  benchmark::RegisterBenchmark("ss1024/pairing", [](benchmark::State& s) { bench_pairing(s, f1024()); });
  benchmark::RegisterBenchmark("ss1024/g_pow", [](benchmark::State& s) { bench_g_pow(s, f1024()); });
  benchmark::RegisterBenchmark("ss256/g_pow", [](benchmark::State& s) { bench_g_pow(s, f256()); });
  benchmark::RegisterBenchmark("ss512/g_pow", [](benchmark::State& s) { bench_g_pow(s, f512()); });
  benchmark::RegisterBenchmark("ss256/gt_pow", [](benchmark::State& s) { bench_gt_pow(s, f256()); });
  benchmark::RegisterBenchmark("ss512/gt_pow", [](benchmark::State& s) { bench_gt_pow(s, f512()); });
  benchmark::RegisterBenchmark("ss256/g_mul", [](benchmark::State& s) { bench_g_mul(s, f256()); });
  benchmark::RegisterBenchmark("ss512/g_mul", [](benchmark::State& s) { bench_g_mul(s, f512()); });
  benchmark::RegisterBenchmark("ss256/g_random", [](benchmark::State& s) { bench_g_random(s, f256()); });
  benchmark::RegisterBenchmark("ss512/g_random", [](benchmark::State& s) { bench_g_random(s, f512()); });
  benchmark::RegisterBenchmark("ss256/gt_random", [](benchmark::State& s) { bench_gt_random(s, f256()); });
  benchmark::RegisterBenchmark("ss256/hash_to_g", [](benchmark::State& s) { bench_hash_to_g(s, f256()); });
}

// Multi-exponentiation vs the naive product of powers (the Strauss
// interleaving used for every prod a_i^{s_i} in the protocols).
void bench_multi_pow(benchmark::State& state) {
  auto& f = f256();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<group::TateSS256::G> as;
  std::vector<group::TateSS256::Scalar> ss;
  for (std::size_t i = 0; i < n; ++i) {
    as.push_back(f.gg.g_random(f.rng));
    ss.push_back(f.gg.sc_random(f.rng));
  }
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_multi_pow(as, ss));
}

void bench_naive_multi_pow(benchmark::State& state) {
  auto& f = f256();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<group::TateSS256::G> as;
  std::vector<group::TateSS256::Scalar> ss;
  for (std::size_t i = 0; i < n; ++i) {
    as.push_back(f.gg.g_random(f.rng));
    ss.push_back(f.gg.sc_random(f.rng));
  }
  for (auto _ : state) {
    auto acc = f.gg.g_id();
    for (std::size_t i = 0; i < n; ++i) acc = f.gg.g_mul(acc, f.gg.g_pow(as[i], ss[i]));
    benchmark::DoNotOptimize(acc);
  }
}

void bench_hpske_enc(benchmark::State& state) {
  auto& f = f256();
  schemes::HpskeG<group::TateSS256> h(f.gg, static_cast<std::size_t>(state.range(0)));
  const auto sk = h.gen(f.rng);
  for (auto _ : state) benchmark::DoNotOptimize(h.enc(sk, f.p, f.rng));
}

void bench_hpske_dec(benchmark::State& state) {
  auto& f = f256();
  schemes::HpskeG<group::TateSS256> h(f.gg, static_cast<std::size_t>(state.range(0)));
  const auto sk = h.gen(f.rng);
  const auto ct = h.enc(sk, f.p, f.rng);
  for (auto _ : state) benchmark::DoNotOptimize(h.dec(sk, ct));
}

// Fixed-base (comb-table) exponentiation vs the generic wNAF path, and the
// precomputed encryption built on it.
void bench_fixed_pow_g(benchmark::State& state) {
  auto& f = f256();
  group::FixedPowG<group::TateSS256> tbl(f.gg, f.gg.g_gen());
  for (auto _ : state) benchmark::DoNotOptimize(tbl.pow(f.gg.sc_random(f.rng)));
}

void bench_enc_vs_precomp(benchmark::State& state) {
  auto& f = f256();
  using Core = dlr::schemes::DlrCore<group::TateSS256>;
  const auto prm = dlr::schemes::DlrParams::derive(f.gg.scalar_bits(), 64);
  auto sys = dlr::schemes::DlrSystem<group::TateSS256>::create(
      f.gg, prm, dlr::schemes::P1Mode::Plain, 606);
  const Core::PkTable tbl(f.gg, sys.pk());
  const auto m = f.gg.gt_random(f.rng);
  if (state.range(0) == 0) {
    for (auto _ : state) benchmark::DoNotOptimize(Core::enc(f.gg, sys.pk(), m, f.rng));
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(Core::enc_precomp(f.gg, tbl, m, f.rng));
  }
}

void bench_sha256_1k(benchmark::State& state) {
  crypto::Rng rng(1);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

void bench_chacha_rng_1k(benchmark::State& state) {
  crypto::Rng rng(2);
  Bytes buf(1024);
  for (auto _ : state) {
    rng.fill(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

}  // namespace

int main(int argc, char** argv) {
  register_group_benches();
  benchmark::RegisterBenchmark("ss256/multi_pow", bench_multi_pow)->Arg(4)->Arg(21);
  benchmark::RegisterBenchmark("ss256/naive_multi_pow", bench_naive_multi_pow)
      ->Arg(4)
      ->Arg(21);
  benchmark::RegisterBenchmark("ss256/fixed_pow_g", bench_fixed_pow_g);
  benchmark::RegisterBenchmark("ss256/dlr_enc", bench_enc_vs_precomp)->Arg(0);
  benchmark::RegisterBenchmark("ss256/dlr_enc_precomp", bench_enc_vs_precomp)->Arg(1);
  benchmark::RegisterBenchmark("ss256/hpske_enc", bench_hpske_enc)->Arg(4)->Arg(8);
  benchmark::RegisterBenchmark("ss256/hpske_dec", bench_hpske_dec)->Arg(4)->Arg(8);
  benchmark::RegisterBenchmark("sha256/1KiB", bench_sha256_1k);
  benchmark::RegisterBenchmark("chacha_rng/1KiB", bench_chacha_rng_1k);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
