#include "keystore/segment_journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "service/journal.hpp"  // ensure_dir, join_path
#include "telemetry/metrics.hpp"
#include "transport/frame.hpp"  // crc32

namespace dlr::keystore {

namespace {

constexpr char kMagic[4] = {'D', 'L', 'R', 'S'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 4;

[[noreturn]] void throw_io(const std::string& op, const std::string& path) {
  throw std::runtime_error("segjournal: " + op + " " + path + ": " + std::strerror(errno));
}

void write_all(int fd, const Bytes& data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto k = ::write(fd, data.data() + off, data.size() - off);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw_io("write", path);
    }
    off += static_cast<std::size_t>(k);
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("open(dir)", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_io("fsync(dir)", dir);
  }
  ::close(fd);
}

[[nodiscard]] Bytes frame_record(std::uint64_t seq, const KeyId& id, bool tomb,
                                 const Bytes& state) {
  ByteWriter p;
  p.u64(seq);
  p.str(id.tenant);
  p.str(id.key);
  p.u8(tomb ? 1 : 0);
  p.blob(state);
  const Bytes payload = p.take();

  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(kMagic),
                                      sizeof(kMagic)));
  w.u8(kVersion);
  w.u32(transport::crc32(payload));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  return w.take();
}

/// Parse `seg-<16 hex>.log` -> segment id, or nullopt for anything else.
[[nodiscard]] std::optional<std::uint64_t> parse_seg_name(const std::string& name) {
  if (name.size() != 4 + 16 + 4 || name.compare(0, 4, "seg-") != 0 ||
      name.compare(20, 4, ".log") != 0)
    return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    id <<= 4;
    if (c >= '0' && c <= '9') id |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') id |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return id;
}

[[nodiscard]] std::string seg_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%016llx.log", static_cast<unsigned long long>(id));
  return buf;
}

[[nodiscard]] Bytes read_whole_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io("open", path);
  Bytes data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const auto k = ::read(fd, buf, sizeof(buf));
    if (k < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_io("read", path);
    }
    if (k == 0) break;
    data.insert(data.end(), buf, buf + k);
  }
  ::close(fd);
  return data;
}

}  // namespace

SegmentJournal::SegmentJournal(std::string dir, Options opt)
    : dir_(std::move(dir)), opt_(opt) {
  service::ensure_dir(dir_);

  // Enumerate segments; delete stray .tmp files (crash before rename).
  std::vector<std::uint64_t> segs;
  DIR* d = ::opendir(dir_.c_str());
  if (!d) throw_io("opendir", dir_);
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (const auto id = parse_seg_name(name)) {
      segs.push_back(*id);
    } else if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      ::unlink(service::join_path(dir_, name).c_str());
      ++recovery_.tmp_removed;
    }
  }
  ::closedir(d);
  std::sort(segs.begin(), segs.end());

  // Replay every record of every segment; latest seq wins per key. A bad
  // record (CRC, framing, short header) ends that segment's scan -- it is
  // the torn tail of a crashed append.
  std::uint64_t max_seq = 0;
  for (const auto id : segs) {
    ++recovery_.segments_scanned;
    const Bytes data = read_whole_file(seg_path(id));
    std::size_t off = 0;
    bool torn = false;
    while (off < data.size()) {
      if (data.size() - off < kHeaderBytes ||
          std::memcmp(data.data() + off, kMagic, sizeof(kMagic)) != 0 ||
          data[off + 4] != kVersion) {
        torn = true;
        break;
      }
      std::uint32_t crc = 0, len = 0;
      std::memcpy(&crc, data.data() + off + 5, 4);
      std::memcpy(&len, data.data() + off + 9, 4);
      if (data.size() - off - kHeaderBytes < len) {
        torn = true;
        break;
      }
      Bytes payload(data.begin() + static_cast<std::ptrdiff_t>(off + kHeaderBytes),
                    data.begin() + static_cast<std::ptrdiff_t>(off + kHeaderBytes + len));
      if (transport::crc32(payload) != crc) {
        torn = true;
        break;
      }
      try {
        ByteReader r(payload);
        Live rec;
        rec.seq = r.u64();
        KeyId id2;
        id2.tenant = r.str();
        id2.key = r.str();
        rec.tombstone = r.u8() != 0;
        rec.state = r.blob();
        if (!r.done()) throw std::invalid_argument("trailing");
        max_seq = std::max(max_seq, rec.seq);
        auto& slot = live_[id2];
        if (rec.seq >= slot.seq) slot = std::move(rec);
        ++recovery_.records;
      } catch (const std::exception&) {
        torn = true;
        break;
      }
      off += kHeaderBytes + len;
    }
    if (torn) ++recovery_.torn_tails;
  }
  if (recovery_.torn_tails)
    telemetry::Registry::global()
        .counter("ks.journal.torn_tails")
        .add(recovery_.torn_tails);

  // Tombstoned keys are dead: drop them from the live map (their marker
  // stays on disk until the next compaction discards it).
  for (auto it = live_.begin(); it != live_.end();)
    it = it->second.tombstone ? live_.erase(it) : std::next(it);

  next_seq_ = max_seq + 1;
  sealed_ = std::move(segs);
  recovered_.reserve(live_.size());
  for (const auto& [k, v] : live_) recovered_.emplace(k, v.state);

  // Fresh active segment above every existing id.
  open_active_locked(sealed_.empty() ? 1 : sealed_.back() + 1);
}

SegmentJournal::~SegmentJournal() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string SegmentJournal::seg_path(std::uint64_t id) const {
  return service::join_path(dir_, seg_name(id));
}

void SegmentJournal::open_active_locked(std::uint64_t id) {
  const std::string path = seg_path(id);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0600);
  if (fd < 0) throw_io("open", path);
  active_id_ = id;
  active_fd_ = fd;
  active_bytes_ = 0;
}

void SegmentJournal::roll_if_needed_locked() {
  if (active_bytes_ < opt_.segment_bytes) return;
  if (::fsync(active_fd_) != 0) throw_io("fsync", seg_path(active_id_));
  ::close(active_fd_);
  active_fd_ = -1;
  sealed_.push_back(active_id_);
  open_active_locked(active_id_ + 1);
}

void SegmentJournal::append_locked(const KeyId& id, const Bytes& state, bool tomb) {
  const std::uint64_t seq = next_seq_++;
  const Bytes record = frame_record(seq, id, tomb, state);
  write_all(active_fd_, record, seg_path(active_id_));
  if (opt_.fsync_each && ::fsync(active_fd_) != 0) throw_io("fsync", seg_path(active_id_));
  active_bytes_ += record.size();
  if (tomb) {
    live_.erase(id);
  } else {
    auto& slot = live_[id];
    slot.seq = seq;
    slot.tombstone = false;
    slot.state = state;
  }
  roll_if_needed_locked();
}

void SegmentJournal::append(const KeyId& id, const Bytes& state) {
  if (!attached()) return;
  std::lock_guard<std::mutex> lk(mu_);
  append_locked(id, state, /*tomb=*/false);
}

void SegmentJournal::tombstone(const KeyId& id) {
  if (!attached()) return;
  std::lock_guard<std::mutex> lk(mu_);
  append_locked(id, {}, /*tomb=*/true);
}

void SegmentJournal::flush() {
  if (!attached()) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (active_fd_ >= 0 && ::fsync(active_fd_) != 0) throw_io("fsync", seg_path(active_id_));
}

void SegmentJournal::fire_hook(const char* step) {
  if (crash_hook_) crash_hook_(step);
}

bool SegmentJournal::maybe_compact() {
  if (!attached()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (sealed_.size() < opt_.compact_min_segments) return false;
  compact_locked();
  return true;
}

void SegmentJournal::compact() {
  if (!attached()) return;
  std::lock_guard<std::mutex> lk(mu_);
  compact_locked();
}

void SegmentJournal::compact_locked() {
  // Fold the active segment in too: seal it so the compacted segment is a
  // complete replacement for everything currently on disk.
  if (active_fd_ >= 0) {
    if (::fsync(active_fd_) != 0) throw_io("fsync", seg_path(active_id_));
    ::close(active_fd_);
    active_fd_ = -1;
    sealed_.push_back(active_id_);
  }
  const std::uint64_t new_id = active_id_ + 1;
  const std::string tmp = seg_path(new_id) + ".tmp";

  // Records keep their ORIGINAL seqs: if a crash leaves both the compacted
  // segment and the old ones, replay resolves every duplicate to the same
  // winner (header comment).
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) throw_io("open", tmp);
  try {
    fire_hook("compact.tmp_open");
    bool first = true;
    for (const auto& [id, rec] : live_) {
      write_all(fd, frame_record(rec.seq, id, false, rec.state), tmp);
      // Fire mid-write (after the first record) so the crash matrix covers a
      // half-written tmp, not just an empty or complete one.
      if (first) {
        fire_hook("compact.tmp_write");
        first = false;
      }
    }
    if (live_.empty()) fire_hook("compact.tmp_write");
    if (::fsync(fd) != 0) throw_io("fsync", tmp);
    fire_hook("compact.tmp_fsync");
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) throw_io("close", tmp);

  if (::rename(tmp.c_str(), seg_path(new_id).c_str()) != 0) throw_io("rename", tmp);
  fire_hook("compact.rename");
  fsync_dir(dir_);
  fire_hook("compact.dir_fsync");

  const std::vector<std::uint64_t> old = std::move(sealed_);
  sealed_ = {new_id};
  bool first_unlink = true;
  for (const auto id : old) {
    ::unlink(seg_path(id).c_str());
    if (first_unlink) {
      fire_hook("compact.unlink");
      first_unlink = false;
    }
  }
  if (old.empty()) fire_hook("compact.unlink");
  fsync_dir(dir_);

  ++compactions_;
  telemetry::Registry::global().counter("ks.compactions").add();
  open_active_locked(new_id + 1);
  fire_hook("compact.done");
}

std::unordered_map<KeyId, Bytes, KeyIdHash> SegmentJournal::take_recovered() {
  std::lock_guard<std::mutex> lk(mu_);
  return std::move(recovered_);
}

SegmentJournal::RecoveryStats SegmentJournal::recovery_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recovery_;
}

std::size_t SegmentJournal::live_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

std::size_t SegmentJournal::segment_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sealed_.size() + (active_fd_ >= 0 ? 1 : 0);
}

std::uint64_t SegmentJournal::compactions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return compactions_;
}

void SegmentJournal::set_crash_hook(std::function<void(const char*)> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  crash_hook_ = std::move(hook);
}

}  // namespace dlr::keystore
