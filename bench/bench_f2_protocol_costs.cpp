// F2 -- distributed-protocol costs and the per-device operation split
// (paper Section 1.1 "Simplicity of One of the Two Devices" and the
// Construction 5.3 protocols).
//
// For a sweep of lambda on the fast SS256 curve (plus one SS512 point):
// decryption / refresh latency, communication bytes, and per-party operation
// counts -- verifying that P2 executes only scalar sampling, exponentiations
// and multiplications (no pairings, no group sampling, no hashing).
#include "bench_util.hpp"
#include "group/counting_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

namespace {

using namespace dlr;
using namespace dlr::bench;

template <class GG>
void run_one(const std::string& label, GG base, std::size_t lambda, Table& t) {
  using CG = group::CountingGroup<GG>;
  const auto prm = schemes::DlrParams::derive(base.scalar_bits(), lambda);

  CG gg1(base);  // counts P1's ops (and keygen/encryption, reset below)
  CG gg2(base);  // counts P2's ops
  crypto::Rng rng(99);
  auto kg = schemes::DlrCore<CG>::gen(gg1, prm, rng);
  schemes::DlrParty1<CG> p1(gg1, prm, kg.pk, std::move(kg.sk1), schemes::P1Mode::Plain,
                            crypto::Rng(1));
  schemes::DlrParty2<CG> p2(gg2, prm, std::move(kg.sk2), crypto::Rng(2));

  const auto m = gg1.gt_random(rng);
  const auto c = schemes::DlrCore<CG>::enc(gg1, kg.pk, m, rng);

  gg1.reset_counts();
  gg2.reset_counts();

  Bytes msg1, msg2, msg3, msg4;
  const double dec_p1_ms = time_ms([&] { msg1 = p1.dec_round1(c); }, 1);
  const double dec_p2_ms = time_ms([&] { msg2 = p2.dec_respond(msg1); }, 1);
  double fin = time_ms([&] { (void)p1.dec_finish(msg2); }, 1);
  const auto dec_ops1 = gg1.snapshot();
  const auto dec_ops2 = gg2.snapshot();
  gg1.reset_counts();
  gg2.reset_counts();
  const double ref_p1_ms = time_ms([&] { msg3 = p1.ref_round1(); }, 1);
  const double ref_p2_ms = time_ms([&] { msg4 = p2.ref_respond(msg3); }, 1);
  const double ref_fin_ms = time_ms([&] { p1.ref_finish(msg4); }, 1);
  const auto ref_ops2 = gg2.snapshot();

  t.row({label, std::to_string(lambda), std::to_string(prm.ell), std::to_string(prm.kappa),
         fmt(dec_p1_ms + fin), fmt(dec_p2_ms), fmt(ref_p1_ms + ref_fin_ms), fmt(ref_p2_ms),
         fmt_bytes(msg1.size() + msg2.size()), fmt_bytes(msg3.size() + msg4.size()),
         std::to_string(dec_ops1.pairings),
         std::to_string(dec_ops2.pairings + ref_ops2.pairings),
         std::to_string(dec_ops2.exps() + ref_ops2.exps() + dec_ops2.multi_pow_terms +
                        ref_ops2.multi_pow_terms)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlr;
  using namespace dlr::bench;

  banner("F2: protocol latency, communication, per-device op profile",
         "paper Section 1.1 (P2 simplicity) + Construction 5.3");

  Table t({"curve", "lambda", "l", "kappa", "dec P1 ms", "dec P2 ms", "ref P1 ms",
           "ref P2 ms", "dec comm", "ref comm", "P1 pairings", "P2 pairings", "P2 exps"});

  const auto ss256 = group::make_tate_ss256();
  for (const std::size_t lambda : {16u, 32u, 64u, 128u, 256u, 512u})
    run_one("ss256", ss256, lambda, t);
  run_one("ss512", group::make_tate_ss512(), 160, t);
  t.print();

  std::printf(
      "\nShape check: P2 executes ZERO pairings in every configuration -- its\n"
      "entire job is 'products of received elements raised to its scalars'\n"
      "(Section 1.1), so it can be a smart card. All pairing work sits on P1.\n"
      "Costs grow linearly in l*kappa = O(lambda^2/n^2), the price of tolerating\n"
      "a (1-o(1)) leakage fraction.\n");
  export_json_if_requested(argc, argv, "bench_f2_protocol_costs");
  return 0;
}
