// Quickstart: the full DLR lifecycle in ~60 lines.
//
//   1. Derive parameters, generate keys (the secret key is *born shared* --
//      no device ever holds it whole).
//   2. Encrypt with the public key alone.
//   3. Decrypt via the 2-party protocol between the devices.
//   4. Refresh the shares; the public key never changes.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

int main() {
  using namespace dlr;
  using GG = group::TateSS256;  // fast reproduction curve; use make_tate_ss512() for real sizes

  // 1. Setup. lambda is the leakage parameter: how many bits per time period
  //    the adversary may learn from device P1's secret memory.
  const GG gg = group::make_tate_ss256();
  const std::size_t lambda = 64;
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), lambda);
  std::printf("parameters: n=%zu lambda=%zu -> kappa=%zu, l=%zu\n", prm.n, prm.lambda,
              prm.kappa, prm.ell);

  auto sys = schemes::DlrSystem<GG>::create(gg, prm, schemes::P1Mode::Plain, /*seed=*/2012);
  std::printf("key generated; P1 holds (a_1..a_l, Phi), P2 holds (s_1..s_l)\n");

  // 2. Encrypt a GT element under the public key. Anyone can do this; no
  //    interaction, 2 exponentiations, 2-element ciphertext.
  crypto::Rng rng = crypto::Rng::from_os_entropy();
  const auto message = gg.gt_random(rng);
  const auto ct = schemes::DlrCore<GG>::enc(gg, sys.pk(), message, rng);
  std::printf("encrypted: ciphertext is %zu bytes\n",
              schemes::DlrCore<GG>::ciphertext_bytes(gg));

  // 3. Decrypt via the 2-party protocol; the transcript is public by design.
  net::Channel ch;
  const auto out = sys.decrypt(ct, ch);
  std::printf("decrypted via 2-party protocol: %s (transcript: %zu messages, %zu bytes)\n",
              gg.gt_eq(out, message) ? "CORRECT" : "WRONG", ch.transcript().count(),
              ch.transcript().total_bytes());

  // 4. Refresh the shares a few times; decryption of fresh ciphertexts keeps
  //    working because the public key is invariant.
  for (int t = 0; t < 3; ++t) {
    sys.refresh();
    const auto m2 = gg.gt_random(rng);
    const auto c2 = schemes::DlrCore<GG>::enc(gg, sys.pk(), m2, rng);
    std::printf("after refresh %d: decryption %s\n", t + 1,
                gg.gt_eq(sys.decrypt(c2), m2) ? "CORRECT" : "WRONG");
  }
  return 0;
}
